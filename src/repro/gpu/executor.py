"""Functional + timed execution of translated kernels (paper §4.1–4.2).

Map kernels: records are split statically across threadblocks; within a
block, threads either take a static round-robin share or *steal* records
from the block's pool through a shared-memory atomic counter (paper's
record stealing). Every active thread executes the translated region
with GPU-runtime builtins (``getRecord``/``emitKV``), emitting into its
portion of the global KV store, while per-lane charges accumulate into
warp costs for the timing model.

Combine kernels: each warp redundantly executes the combiner over a
contiguous chunk of a sorted partition (``getKV``/``storeKV``), trading
exact CPU-combiner equivalence for parallelism exactly as §4.2 sanctions —
chunk-boundary keys yield partial aggregates that the reducer repairs.

Lane bodies run on one of two engines (:mod:`repro.gpu.engine`): the
default compiled engine calls a per-launch compiled closure per lane,
while the ``"tree"`` engine keeps the original one-interpreter-per-lane
harness as the differential reference. Both charge costs through the
same :class:`~repro.gpu.charging.ChargeHook`; the warp/block/grid
timing folds below are shared, so ``WarpCost``/``KernelCost`` are
engine-independent by construction.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any

from ..compiler.kernel_ir import KernelIR, VarClass, VarInfo
from ..errors import GpuError, KVStoreOverflow
from ..kvstore import GlobalKVStore, KVPair, Partitioner
from ..minic import cast as A
from ..minic import ctypes as T
from ..minic.interpreter import ExecCounters, Interpreter
from ..minic.values import Buffer, NULL, Ptr
from ..obs import trace as obs
from .charging import (
    ChargeHook,
    CountingChargeHook,
    DEFAULT_CHARGE_HOOK,
    LaneCharges,
)
from .device import GpuDevice
from .engine import (
    CompiledLaneRunner,
    LaneState,
    _check_engine,
    clone_buffer as _clone_buffer,
    default_gpu_engine,
    kernel_program,
    make_combine_builtins,
    make_map_builtins,
    snapshot_value as _snapshot_value,
)
from .timing import KernelCost, TimingModel, WarpCost
from .vector import VectorLaneRunner

#: Extra issue slots charged per runtime-call dispatch (mapSetup etc.).
_SETUP_INSTR = 24.0

#: Smallest per-warp chunk in the combine kernel (see run_combine_kernel).
_MIN_COMBINE_CHUNK = 32


class GpuInterpreter(Interpreter):
    """Interpreter specialization that charges memory accesses by the
    target buffer's memory space (tree lane engine)."""

    def __init__(self, program: A.Program, builtins: dict,
                 charges: LaneCharges,
                 hook: ChargeHook = DEFAULT_CHARGE_HOOK):
        super().__init__(program, stdin="", builtins=builtins)
        self.charges = charges
        # An instance attribute, not a method: the same hook-bound closure
        # shape the compiled engine's facade carries, so the mini-C
        # compiled backend picks up charging uniformly from either.
        self._charge_access = hook.bind_charges(charges)

    def _eval_Index(self, expr: A.Index) -> Any:
        ptr = self._as_ptr(self.eval(expr.base))
        idx = int(self.eval(expr.index))
        if ptr.stride > 1:  # row of a flattened 2-D array
            return Ptr(ptr.buffer, ptr.offset + idx * ptr.stride, 1)
        self.counters.loads += 1
        self._charge_access(ptr.buffer, is_store=False)
        return ptr.buffer.read(ptr.offset + idx)  # type: ignore[union-attr]

    def _eval_Assign(self, expr: A.Assign) -> Any:
        ref = self._lvalue(expr.target)
        value = self.eval(expr.value)
        if expr.op != "=":
            current = ref.deref()
            value = self._binop(expr.op[:-1], current, value)
        ref.store(value)
        self.counters.stores += 1
        buffer = ref.buffer if isinstance(ref, Ptr) else None
        self._charge_access(buffer, is_store=True)
        return ref.deref()


# --------------------------------------------------------------------------
# Environment construction
# --------------------------------------------------------------------------


def build_thread_env(
    interp: Interpreter,
    kernel: KernelIR,
    snapshot: dict[str, Any],
    shared_ro_buffers: dict[str, Buffer],
) -> None:
    """Populate a thread's scope per Algorithm 1 placement decisions."""
    interp.push_scope()
    for var in kernel.variables.values():
        kname = var.kernel_name
        if var.klass is VarClass.CONST_SCALAR:
            value = _snapshot_value(snapshot, var)
            interp.declare(kname, var.ctype, value=value)
        elif var.klass in (VarClass.GLOBAL_RO_ARRAY, VarClass.TEXTURE_ARRAY):
            interp.declare(kname, T.Pointer(T.VOID),
                           value=Ptr(shared_ro_buffers[var.name], 0))
        elif var.klass is VarClass.FIRSTPRIVATE_SCALAR:
            interp.declare(kname, var.ctype, value=_snapshot_value(snapshot, var))
        elif var.klass in (VarClass.FIRSTPRIVATE_ARRAY, VarClass.SHARED_ARRAY):
            host_val = snapshot.get(var.name)
            space = "shared" if var.klass is VarClass.SHARED_ARRAY else "private"
            if isinstance(host_val, Buffer):
                interp.declare(kname, T.Pointer(T.VOID),
                               value=Ptr(_clone_buffer(host_val, space), 0))
            elif isinstance(host_val, Ptr) and host_val.buffer is not None:
                interp.declare(kname, T.Pointer(T.VOID),
                               value=Ptr(_clone_buffer(host_val.buffer, space), 0))
            elif isinstance(var.ctype, T.Array):
                cell = interp.declare(kname, var.ctype)
                cell.value.space = space
                if host_val is not None:
                    raise GpuError(
                        f"cannot initialize firstprivate array {var.name!r} "
                        f"from {type(host_val).__name__}"
                    )
            else:
                interp.declare(kname, var.ctype,
                               value=host_val if host_val is not None else 0)
        else:  # PRIVATE
            if isinstance(var.ctype, T.Array):
                cell = interp.declare(kname, var.ctype)
                cell.value.space = "private"
            elif var.ctype.is_pointer:
                interp.declare(kname, var.ctype, value=NULL)
            else:
                interp.declare(kname, var.ctype)


def prepare_shared_ro(kernel: KernelIR, snapshot: dict[str, Any]) -> dict[str, Buffer]:
    """Device-resident copies of sharedRO/texture arrays (one per launch,
    shared by all threads)."""
    shared: dict[str, Buffer] = {}
    for var in kernel.vars_of(VarClass.GLOBAL_RO_ARRAY, VarClass.TEXTURE_ARRAY):
        host_val = _snapshot_value(snapshot, var)
        buf = host_val.buffer if isinstance(host_val, Ptr) else host_val
        if not isinstance(buf, Buffer):
            raise GpuError(f"sharedRO array {var.name!r} has no backing buffer")
        space = "texture" if var.klass is VarClass.TEXTURE_ARRAY else "global"
        shared[var.name] = _clone_buffer(buf, space)
    return shared


# --------------------------------------------------------------------------
# Lane engines
# --------------------------------------------------------------------------


class _TreeLaneRunner:
    """Reference lane engine: one ``GpuInterpreter`` per lane, with the
    thread environment rebuilt through scope dicts. Shares the builtin
    factories (and thus the charge hook) with the compiled engine, so
    only the execution mechanism differs."""

    def __init__(
        self,
        device: GpuDevice,
        kernel: KernelIR,
        snapshot: dict[str, Any],
        shared_ro: dict[str, Buffer],
        store: GlobalKVStore | None = None,
        partitioner: Partitioner | None = None,
        hook: ChargeHook = DEFAULT_CHARGE_HOOK,
    ):
        self.device = device
        self.kernel = kernel
        self.snapshot = snapshot
        self.shared_ro = shared_ro
        self.store = store
        self.partitioner = partitioner
        self.hook = hook
        self.program = kernel_program(kernel)

    def _run_lane(self, state: LaneState,
                  charges: LaneCharges) -> ExecCounters:
        kernel = self.kernel
        if kernel.is_mapper:
            builtins = make_map_builtins(kernel, self.device, self.hook,
                                         state, self.store, self.partitioner)
        else:
            builtins = make_combine_builtins(kernel, self.device, self.hook,
                                             state)
        interp = GpuInterpreter(self.program, builtins, charges,
                                hook=self.hook)
        build_thread_env(interp, kernel, self.snapshot, self.shared_ro)
        try:
            interp.exec_stmt(kernel.body)
        finally:
            interp.pop_scope()
        return interp.counters

    def run_map_lane(self, thread_records: list[bytes], global_tid: int,
                     charges: LaneCharges) -> ExecCounters:
        state = LaneState()
        state.records = thread_records
        state.charges = charges
        state.global_tid = global_tid
        return self._run_lane(state, charges)

    def run_combine_chunk(
        self, chunk: list[KVPair], charges: LaneCharges
    ) -> tuple[ExecCounters, list[tuple[Any, Any]]]:
        state = LaneState()
        state.chunk = chunk
        state.charges = charges
        state.output = out = []
        counters = self._run_lane(state, charges)
        return counters, out


def _make_lane_runner(
    engine: str | None,
    device: GpuDevice,
    kernel: KernelIR,
    snapshot: dict[str, Any],
    shared_ro: dict[str, Buffer],
    store: GlobalKVStore | None = None,
    partitioner: Partitioner | None = None,
):
    name = _check_engine(engine if engine is not None else default_gpu_engine())
    cls = {
        "compiled": CompiledLaneRunner,
        "tree": _TreeLaneRunner,
        "vector": VectorLaneRunner,
    }[name]
    hook: ChargeHook = DEFAULT_CHARGE_HOOK
    rec = obs.active()
    if rec.enabled:
        # Per-launch event tallies; cost formulas (and thus the compiled
        # kernel-body cache key) are untouched.
        hook = CountingChargeHook(DEFAULT_CHARGE_HOOK, rec.metrics)
    return cls(device, kernel, snapshot, shared_ro, store, partitioner,
               hook=hook)


def _record_kernel_launch(name: str, device: GpuDevice, cost: KernelCost,
                          block_cycles: list[float],
                          args: dict[str, Any]) -> None:
    """One kernel span (plus its blocks laid out per SM) on the device
    timeline, fed from the ChargeHook-accumulated WarpCost totals."""
    rec = obs.active()
    if not rec.enabled:
        return
    spec = device.spec
    pid = f"gpu:{spec.name}"
    start = rec.cursor(pid, "kernels")
    totals = cost.totals
    rec.complete(name, "kernel", pid, "kernels", cost.seconds, ts=start,
                 args={
                     "blocks": cost.blocks, "warps": cost.warps,
                     "cycles": cost.cycles,
                     "warp_instructions": totals.instructions,
                     "global_txn": totals.global_txn,
                     "shared_accesses": totals.shared_accesses,
                     "shared_atomics": totals.shared_atomics,
                     "global_atomics": totals.global_atomics,
                     "texture_accesses": totals.texture_accesses,
                     **args,
                 })
    # Mirror TimingModel.grid_cycles' round-robin block → SM placement,
    # so the per-SM lanes show exactly the load imbalance that set the
    # kernel's duration (the busiest SM reaches the span's end).
    sm_end = [start] * spec.num_sms
    for i, cycles in enumerate(block_cycles):
        sm = i % spec.num_sms
        dur = device.cycles_to_seconds(cycles)
        rec.complete(f"block {i}", "gpu-block", pid, f"sm{sm}", dur,
                     ts=sm_end[sm], args={"cycles": cycles})
        sm_end[sm] += dur
    rec.inc("gpu.kernel_launches")
    rec.inc("gpu.warps", cost.warps)


# --------------------------------------------------------------------------
# Map kernel execution
# --------------------------------------------------------------------------


@dataclass
class MapLaunchResult:
    cost: KernelCost = field(default_factory=KernelCost)
    counters: ExecCounters = field(default_factory=ExecCounters)
    records_processed: int = 0
    steals: int = 0


def _assign_records_static(
    records: list[bytes], nthreads: int
) -> list[list[bytes]]:
    """Static round-robin record distribution within a block."""
    lanes: list[list[bytes]] = [[] for _ in range(nthreads)]
    for i, rec in enumerate(records):
        lanes[i % nthreads].append(rec)
    return lanes


def _assign_records_stealing(
    records: list[bytes], nthreads: int, capacity_per_thread: int,
    kv_bound: int | None,
) -> tuple[list[list[bytes]], int]:
    """Deterministic emulation of intra-block record stealing: each grab
    goes to the thread that will become free soonest (least accumulated
    record bytes — the runtime's proxy for work). Returns (assignment,
    number of atomic grabs)."""
    if nthreads <= 0:
        raise GpuError("no threads in block")
    lanes: list[list[bytes]] = [[] for _ in range(nthreads)]
    # (accumulated_bytes, thread_id, records_taken)
    heap: list[tuple[int, int]] = [(0, t) for t in range(nthreads)]
    heapq.heapify(heap)
    taken = [0] * nthreads
    steals = 0
    bound = capacity_per_thread if kv_bound is None else max(
        1, capacity_per_thread // max(kv_bound, 1)
    )
    for rec in records:
        while heap:
            load, tid = heapq.heappop(heap)
            if taken[tid] < bound:
                lanes[tid].append(rec)
                taken[tid] += 1
                steals += 1
                heapq.heappush(heap, (load + len(rec), tid))
                break
        else:
            raise KVStoreOverflow(
                "all threads in a block exhausted their KV store portions "
                "while records remain; increase kvpairs or store capacity"
            )
    return lanes, steals


def _chunk_blocks(records: list[bytes], blocks: int) -> list[list[bytes]]:
    """Static, equal split of the fileSplit's records across threadblocks."""
    per = (len(records) + blocks - 1) // max(blocks, 1)
    return [records[i * per : (i + 1) * per] for i in range(blocks)]


def _warp_prerun(
    runner: Any, lanes: list[list[bytes]], base: int
) -> dict[int, tuple[LaneCharges, ExecCounters]] | None:
    """Batch active lanes through the runner's warp path.

    Runners exposing ``run_map_warp`` (the vector engine) execute every
    active lane of the launch in one call — lanes never interact (the KV
    store is per-thread and read-only tables are shared), so batching
    across blocks is unobservable while letting a vectorized region span
    the whole grid. The per-lane cost fold below then consumes the
    precomputed (charges, counters) pairs instead of invoking
    ``run_map_lane``, keeping the timing-model code identical across
    engines. Returns ``None`` for plain per-lane runners."""
    batch_fn = getattr(runner, "run_map_warp", None)
    if batch_fn is None:
        return None
    batch = [(recs, base + i, LaneCharges(instructions=_SETUP_INSTR))
             for i, recs in enumerate(lanes) if recs]
    if not batch:
        return {}
    counters = batch_fn(batch)
    return {tid: (charges, cnt)
            for (_recs, tid, charges), cnt in zip(batch, counters)}


def run_map_kernel_global_stealing(
    device: GpuDevice,
    kernel: KernelIR,
    records: list[bytes],
    snapshot: dict[str, Any],
    store: GlobalKVStore,
    partitioner: Partitioner,
    engine: str | None = None,
) -> MapLaunchResult:
    """The design the paper REJECTS (§4.1): one *global* record counter
    shared by every threadblock. Distribution is perfectly balanced
    device-wide, but every steal is a global atomic — 'a global
    work-stealing approach would incur high overheads, due to excessive
    atomic accesses by the GPU threads'. Provided for the DESIGN.md §6
    ablation that shows the paper's block-local scheme wins.
    """
    if not kernel.is_mapper:
        raise GpuError("run_map_kernel_global_stealing requires a mapper")
    # Balance records across ALL threads of the grid (the global queue's
    # steady-state effect), then execute exactly like the normal kernel —
    # but charge a *global* atomic per steal instead of a shared one.
    timing = TimingModel(device.spec)
    launch = kernel.launch
    lanes_all, steals = _assign_records_stealing(
        records, launch.total_threads, store.stores_per_thread,
        kernel.kvpairs_per_record,
    )
    shared_ro = prepare_shared_ro(kernel, snapshot)
    runner = _make_lane_runner(engine, device, kernel, snapshot, shared_ro,
                               store, partitioner)
    warp = device.spec.warp_size
    result = MapLaunchResult()
    result.steals = steals
    block_cycles: list[float] = []
    prerun = _warp_prerun(runner, lanes_all, 0)
    for block_id in range(launch.blocks):
        base = block_id * launch.threads
        warp_costs: list[WarpCost] = []
        lane_critical = 0.0
        for warp_start in range(0, launch.threads, warp):
            lane_instr: list[float] = []
            wc = WarpCost()
            for lane in range(warp_start, min(warp_start + warp, launch.threads)):
                thread_records = lanes_all[base + lane]
                if thread_records and prerun is not None:
                    charges, counters = prerun[base + lane]
                else:
                    charges = LaneCharges(instructions=_SETUP_INSTR)
                if thread_records:
                    if prerun is None:
                        counters = runner.run_map_lane(
                            thread_records, base + lane, charges
                        )
                    # Swap the shared-atomic steal charges for global ones.
                    charges.global_atomics += charges.shared_atomics
                    charges.shared_atomics = 0.0
                    result.counters = result.counters.merged(counters)
                    result.records_processed += len(thread_records)
                    issue = (charges.instructions + counters.ops
                             + counters.branches + 2.0 * counters.fp_ops)
                    lane_instr.append(issue)
                    lane_critical = max(
                        lane_critical,
                        issue * device.spec.issue_cycles
                        + charges.global_txn * device.spec.global_mem_cycles / 4.0,
                    )
                else:
                    lane_instr.append(_SETUP_INSTR)
                wc.global_txn += charges.global_txn
                wc.shared_accesses += charges.shared_accesses
                wc.shared_atomics += charges.shared_atomics
                wc.global_atomics += charges.global_atomics
                wc.texture_accesses += charges.texture_accesses
            wc.instructions = timing.divergent_issue(lane_instr)
            warp_costs.append(wc)
            result.cost.totals.add(wc)
            result.cost.warps += 1
        block_cycles.append(max(timing.block_cycles(warp_costs), lane_critical))
        result.cost.blocks += 1
    # All steals hit ONE global counter: atomics on the same address
    # serialize device-wide, an unhideable critical section — the precise
    # overhead the paper's block-local scheme avoids.
    contention = steals * device.spec.global_atomic_cycles
    result.cost.cycles = timing.grid_cycles(block_cycles) + contention
    result.cost.seconds = device.cycles_to_seconds(result.cost.cycles)
    _record_kernel_launch(
        f"map_kernel[global-stealing] {kernel.name}", device, result.cost,
        block_cycles,
        {"records": result.records_processed, "steals": result.steals},
    )
    return result


def run_map_kernel(
    device: GpuDevice,
    kernel: KernelIR,
    records: list[bytes],
    snapshot: dict[str, Any],
    store: GlobalKVStore,
    partitioner: Partitioner,
    engine: str | None = None,
) -> MapLaunchResult:
    """Execute the map kernel over one fileSplit's records."""
    if not kernel.is_mapper:
        raise GpuError("run_map_kernel requires a mapper kernel")
    timing = TimingModel(device.spec)
    launch = kernel.launch
    warp = device.spec.warp_size
    shared_ro = prepare_shared_ro(kernel, snapshot)
    runner = _make_lane_runner(engine, device, kernel, snapshot, shared_ro,
                               store, partitioner)

    result = MapLaunchResult()
    block_cycles: list[float] = []
    block_records = _chunk_blocks(records, launch.blocks)

    block_lanes: list[list[list[bytes]]] = []
    for block_id in range(launch.blocks):
        recs = block_records[block_id] if block_id < len(block_records) else []
        if kernel.opt.record_stealing:
            lanes, steals = _assign_records_stealing(
                recs, launch.threads, store.stores_per_thread,
                kernel.kvpairs_per_record,
            )
            result.steals += steals
        else:
            lanes = _assign_records_static(recs, launch.threads)
        block_lanes.append(lanes)
    prerun = _warp_prerun(
        runner, [lane for lanes in block_lanes for lane in lanes], 0
    )

    for block_id in range(launch.blocks):
        lanes = block_lanes[block_id]
        warp_costs: list[WarpCost] = []
        lane_critical_path = 0.0
        for warp_start in range(0, launch.threads, warp):
            lane_instr: list[float] = []
            wc = WarpCost()
            any_active = False
            for lane in range(warp_start, min(warp_start + warp, launch.threads)):
                thread_records = lanes[lane]
                global_tid = block_id * launch.threads + lane
                if thread_records and prerun is not None:
                    charges, counters = prerun[global_tid]
                else:
                    charges = LaneCharges(instructions=_SETUP_INSTR)
                if thread_records:
                    any_active = True
                    if prerun is None:
                        counters = runner.run_map_lane(
                            thread_records, global_tid, charges
                        )
                    result.counters = result.counters.merged(counters)
                    result.records_processed += len(thread_records)
                    issue = (
                        charges.instructions
                        + counters.ops
                        + counters.branches
                        + 2.0 * counters.fp_ops
                    )
                    lane_instr.append(issue)
                    # A thread's own record stream is a serial dependency
                    # chain: its memory accesses pipeline (factor ~4) but
                    # cannot overlap with each other the way accesses from
                    # *different* threads can. This per-lane critical path
                    # is exactly what record stealing shortens (Fig. 7d).
                    lane_critical_path = max(
                        lane_critical_path,
                        issue * device.spec.issue_cycles
                        + charges.global_txn * device.spec.global_mem_cycles / 4.0,
                    )
                else:
                    lane_instr.append(_SETUP_INSTR)
                wc.global_txn += charges.global_txn
                wc.shared_accesses += charges.shared_accesses
                wc.shared_atomics += charges.shared_atomics
                wc.global_atomics += charges.global_atomics
                wc.texture_accesses += charges.texture_accesses
            if not any_active and not lane_instr:
                continue
            wc.instructions = timing.divergent_issue(lane_instr)
            warp_costs.append(wc)
            result.cost.totals.add(wc)
            result.cost.warps += 1
        block_cycles.append(
            max(timing.block_cycles(warp_costs), lane_critical_path)
        )
        result.cost.blocks += 1

    result.cost.cycles = timing.grid_cycles(block_cycles)
    result.cost.seconds = device.cycles_to_seconds(result.cost.cycles)
    _record_kernel_launch(
        f"map_kernel {kernel.name}", device, result.cost, block_cycles,
        {"records": result.records_processed, "steals": result.steals},
    )
    return result


# --------------------------------------------------------------------------
# Combine kernel execution
# --------------------------------------------------------------------------


@dataclass
class CombineLaunchResult:
    output: list[tuple[Any, Any]] = field(default_factory=list)
    cost: KernelCost = field(default_factory=KernelCost)
    counters: ExecCounters = field(default_factory=ExecCounters)
    chunks: int = 0


def run_combine_kernel(
    device: GpuDevice,
    kernel: KernelIR,
    partition_pairs: list[KVPair],
    snapshot: dict[str, Any],
    engine: str | None = None,
) -> CombineLaunchResult:
    """Execute the combine kernel over one sorted partition.

    Each warp takes a contiguous chunk; all lanes execute redundantly
    (functionally we run the chunk once and charge redundant issue), with
    warp-cooperative vectorized KV movement when enabled.
    """
    if not kernel.is_combiner:
        raise GpuError("run_combine_kernel requires a combiner kernel")
    timing = TimingModel(device.spec)
    launch = kernel.launch
    warp = device.spec.warp_size
    total_warps = launch.blocks * (launch.threads // warp)
    shared_ro = prepare_shared_ro(kernel, snapshot)

    result = CombineLaunchResult()
    n = len(partition_pairs)
    if n == 0:
        return result
    runner = _make_lane_runner(engine, device, kernel, snapshot, shared_ro)
    # kvsPerThread = partition size / warp count, floored so tiny
    # partitions use few warps instead of one-pair chunks (launching a
    # full grid for a handful of pairs would only manufacture partials).
    chunk_size = max(_MIN_COMBINE_CHUNK, (n + total_warps - 1) // total_warps)
    chunks = [
        partition_pairs[i : i + chunk_size] for i in range(0, n, chunk_size)
    ]
    result.chunks = len(chunks)

    warps_per_block = launch.threads // warp
    block_warp_costs: dict[int, list[WarpCost]] = {}
    for chunk_id, chunk in enumerate(chunks):
        block_id = chunk_id // warps_per_block
        charges = LaneCharges(instructions=_SETUP_INSTR)
        counters, out = runner.run_combine_chunk(chunk, charges)
        result.counters = result.counters.merged(counters)
        result.output.extend(out)
        wc = WarpCost(
            instructions=charges.instructions + counters.ops + counters.branches
            + 2.0 * counters.fp_ops,
            global_txn=charges.global_txn,
            shared_accesses=charges.shared_accesses,
            shared_atomics=charges.shared_atomics,
            global_atomics=charges.global_atomics,
            texture_accesses=charges.texture_accesses,
        )
        block_warp_costs.setdefault(block_id, []).append(wc)
        result.cost.totals.add(wc)
        result.cost.warps += 1

    block_cycles = [timing.block_cycles(wcs) for wcs in block_warp_costs.values()]
    result.cost.blocks = len(block_cycles)
    result.cost.cycles = timing.grid_cycles(block_cycles)
    result.cost.seconds = device.cycles_to_seconds(result.cost.cycles)
    _record_kernel_launch(
        f"combine_kernel {kernel.name}", device, result.cost, block_cycles,
        {"pairs_in": n, "pairs_out": len(result.output),
         "chunks": result.chunks},
    )
    return result
