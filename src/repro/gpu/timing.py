"""Warp-level GPU timing model.

The executor records, per warp, how many instructions it issued and how
many memory transactions of each kind it generated; this module turns
those counts into simulated cycles.

Model (documented in DESIGN.md §5):

* **Issue**: every dynamic instruction costs ``issue_cycles`` per warp.
  Divergence makes a warp re-issue for each taken path; we approximate a
  warp's issue count as ``max_lane + DIVERGENCE_PENALTY * (sum_lane -
  max_lane) / lanes`` when lanes executed different work.
* **Memory**: each global transaction costs ``global_mem_cycles``; texture
  hits are cheap (on-chip cache), misses cost like global; shared memory
  and shared atomics are an order of magnitude cheaper than global
  atomics — which is precisely why record stealing uses a *shared*
  counter per threadblock instead of a global one (paper §4.1).
* **Overlap**: an SM hides memory latency by multithreading warps
  (paper §1). A block's time is ``max(issue, mem / MLP)`` where the
  memory-level parallelism factor grows with resident warps.
* **Grid**: blocks are distributed round-robin over SMs; the kernel ends
  when the most loaded SM drains.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import GpuSpec

#: Interpolation between the divergence-free lower bound (max over lanes)
#: and full serialization (sum over lanes) of a warp's issue count. Text
#: kernels with data-dependent loop trip counts sit a few multiples above
#: the lower bound on real hardware.
DIVERGENCE_PENALTY = 0.08

#: Cap on memory-level parallelism per block (resident-warp latency hiding).
MAX_MLP = 8.0


@dataclass
class WarpCost:
    """Raw event counts for one warp's execution."""

    instructions: float = 0.0        # issued warp-instructions
    global_txn: float = 0.0          # global memory transactions
    shared_accesses: float = 0.0
    shared_atomics: float = 0.0
    global_atomics: float = 0.0
    texture_accesses: float = 0.0

    def add(self, other: "WarpCost") -> None:
        self.instructions += other.instructions
        self.global_txn += other.global_txn
        self.shared_accesses += other.shared_accesses
        self.shared_atomics += other.shared_atomics
        self.global_atomics += other.global_atomics
        self.texture_accesses += other.texture_accesses


@dataclass
class KernelCost:
    """Accumulated cost of a kernel launch."""

    cycles: float = 0.0
    seconds: float = 0.0
    warps: int = 0
    blocks: int = 0
    # Aggregate event counts (for tests / ablation reporting).
    totals: WarpCost = field(default_factory=WarpCost)


class TimingModel:
    def __init__(self, spec: GpuSpec):
        self.spec = spec

    def divergent_issue(self, lane_instr_counts: list[float]) -> float:
        """Warp instruction issue count from per-lane dynamic instruction
        counts (SIMD divergence approximation)."""
        if not lane_instr_counts:
            return 0.0
        peak = max(lane_instr_counts)
        total = sum(lane_instr_counts)
        floor = min(lane_instr_counts) * len(lane_instr_counts)
        # Uniform warps run in lockstep at the peak; non-uniform lanes
        # (data-dependent trip counts, idle lanes) re-issue a fraction of
        # the work above the uniform floor.
        return peak + DIVERGENCE_PENALTY * max(total - floor, 0.0)

    def warp_cycles(self, cost: WarpCost) -> tuple[float, float]:
        """(issue cycles, memory cycles) for one warp."""
        s = self.spec
        issue = cost.instructions * s.issue_cycles
        tex_cycles = cost.texture_accesses * (
            s.texture_hit_rate * s.texture_hit_cycles
            + (1.0 - s.texture_hit_rate) * s.texture_miss_cycles
        )
        mem = (
            cost.global_txn * s.global_mem_cycles
            + cost.shared_accesses * s.shared_mem_cycles
            + cost.shared_atomics * s.shared_atomic_cycles
            + cost.global_atomics * s.global_atomic_cycles
            + tex_cycles
        )
        return issue, mem

    def block_cycles(self, warp_costs: list[WarpCost]) -> float:
        """Time for one threadblock: issue serializes on the SM's schedulers,
        memory overlaps up to the MLP factor."""
        total_issue = 0.0
        total_mem = 0.0
        for cost in warp_costs:
            issue, mem = self.warp_cycles(cost)
            total_issue += issue
            total_mem += mem
        mlp = min(float(len(warp_costs)) or 1.0, MAX_MLP)
        return max(total_issue, total_mem / mlp)

    def grid_cycles(self, block_cycle_list: list[float]) -> float:
        """Round-robin block placement over SMs; kernel time = busiest SM."""
        sms = [0.0] * self.spec.num_sms
        for i, cycles in enumerate(block_cycle_list):
            sms[i % self.spec.num_sms] += cycles
        return max(sms) if sms else 0.0

    def grid_seconds(self, block_cycle_list: list[float]) -> float:
        return self.grid_cycles(block_cycle_list) * self.spec.cycle_time_s
