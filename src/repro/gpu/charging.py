"""Pluggable per-lane cost charging — the charge-hook interface.

The timing model's per-lane charges used to live in two places: an
``Interpreter`` method override (``GpuInterpreter._charge_access``) and
inline formulas inside the GPU builtins (``getRecord``/``emitKV``/
``getKV``/``storeKV`` and the math/string wrappers). With two lane
engines — the compiled closure engine (:mod:`repro.gpu.engine`) and the
tree-walking reference — that layout would require keeping two copies of
every formula bit-identical by hand.

Instead, every charge now routes through one :class:`ChargeHook`
object. Both engines bind the same hook, so the cost model exists in
exactly one place and "identical WarpCost/KernelCost" is a structural
property, not a testing aspiration (the differential suite still checks
it). The hook also carries a stable ``profile_key`` so the kernel-body
compile cache (:func:`repro.minic.cache.compiled_kernel_body`) can key
compiled artifacts on *program + charge profile*, as alternative
profiles may want different charge call sites compiled in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

#: Issue slots charged per device math-library call (__expf etc. are
#: multi-instruction SFU sequences).
MATH_CALL_INSTR = 8.0


@dataclass
class LaneCharges:
    """Per-thread (lane) cost events; folded into WarpCost per warp."""

    instructions: float = 0.0
    global_txn: float = 0.0
    shared_accesses: float = 0.0
    shared_atomics: float = 0.0
    global_atomics: float = 0.0
    texture_accesses: float = 0.0


class ChargeHook:
    """Interface between kernel execution and the timing model.

    One method per charging event the simulator produces. Implementations
    must be pure accumulators: mutate the passed ``LaneCharges`` /
    ``ExecCounters`` and return nothing, so both lane engines can call
    them from arbitrary execution contexts.

    Most charge arguments are launch constants (transaction width, KV
    record size, vector width, stealing mode), so the hot-path surface is
    the ``bind_*`` family: called once per builtin table, each returns a
    closure specialized to those constants that the builtins then invoke
    per event. The per-event methods remain the simple override surface —
    the default ``bind_*`` implementations just close over them — but a
    profile may override ``bind_*`` directly to fold its
    constant-argument arithmetic into bind time (see
    :class:`SpaceChargeHook`, which defines each formula exactly once, in
    the bound form, and points the per-event method back at it).

    ``profile_key`` must uniquely identify the charge *profile* (the set
    of formulas), because compiled kernel bodies are cached per
    (program, profile).
    """

    profile_key = "null"

    def access(self, charges: LaneCharges, buffer: Any,
               is_store: bool) -> None:
        """One array-element load/store, charged by memory space."""

    def record_read(self, charges: LaneCharges, counters: Any,
                    nbytes: int, txn_bytes: int, stealing: bool) -> None:
        """``getRecord``: one input record pulled into the lane."""

    def kv_emit(self, charges: LaneCharges, counters: Any,
                nbytes: int, vec: int) -> None:
        """``emitKV``: one pair written to the global KV store."""

    def kv_move(self, charges: LaneCharges, kv_bytes: int, txn_bytes: int,
                vec: int, cooperative: bool) -> None:
        """``getKV``/``storeKV``: one pair moved through global memory."""

    def math_call(self, charges: LaneCharges, counters: Any) -> None:
        """One device math-library call."""

    def string_call(self, charges: LaneCharges, length: int,
                    vec: int) -> None:
        """One device string-library call over ``length`` chars."""

    # -- launch-constant bindings (the hot-path surface) --------------------

    def bind_record_read(self, txn_bytes: int,
                         stealing: bool) -> Callable[[Any, Any, int], None]:
        """Specialize :meth:`record_read` to a launch's constants."""
        record_read = self.record_read

        def charge(charges: LaneCharges, counters: Any, nbytes: int) -> None:
            record_read(charges, counters, nbytes, txn_bytes, stealing)

        return charge

    def bind_kv_emit(self, nbytes: int,
                     vec: int) -> Callable[[Any, Any], None]:
        """Specialize :meth:`kv_emit` to a launch's constants."""
        kv_emit = self.kv_emit

        def charge(charges: LaneCharges, counters: Any) -> None:
            kv_emit(charges, counters, nbytes, vec)

        return charge

    def bind_kv_move(self, kv_bytes: int, txn_bytes: int, vec: int,
                     cooperative: bool) -> Callable[[Any], None]:
        """Specialize :meth:`kv_move` to a launch's constants."""
        kv_move = self.kv_move

        def charge(charges: LaneCharges) -> None:
            kv_move(charges, kv_bytes, txn_bytes, vec, cooperative)

        return charge

    def bind_math_call(self) -> Callable[[Any, Any], None]:
        """Per-launch math-call charge closure."""
        math_call = self.math_call

        def charge(charges: LaneCharges, counters: Any) -> None:
            math_call(charges, counters)

        return charge

    def bind_string_call(self, vec: int) -> Callable[[Any, int], None]:
        """Specialize :meth:`string_call` to a launch's vector width."""
        string_call = self.string_call

        def charge(charges: LaneCharges, length: int) -> None:
            string_call(charges, length, vec)

        return charge

    # -- engine bindings ----------------------------------------------------

    def bind_charges(self, charges: LaneCharges) -> Callable[[Any, bool], None]:
        """Per-lane access-charge closure over a fixed LaneCharges (the
        tree engine builds one interpreter — and one of these — per
        lane)."""
        access = self.access

        def charge(buffer: Any, is_store: bool) -> None:
            access(charges, buffer, is_store)

        return charge

    def bind_state(self, state: Any) -> Callable[[Any, bool], None]:
        """Per-launch access-charge closure reading ``state.charges``
        (the compiled engine re-points one LaneState at each lane's
        charges instead of rebuilding closures)."""
        access = self.access

        def charge(buffer: Any, is_store: bool) -> None:
            access(state.charges, buffer, is_store)

        return charge


class SpaceChargeHook(ChargeHook):
    """The calibrated HeteroDoop profile: charges by memory space and by
    the coalescing/vectorization behavior of each runtime primitive
    (paper §4.1–4.2, Fig. 7 mechanisms)."""

    profile_key = "space-v1"

    def access(self, charges: LaneCharges, buffer: Any,
               is_store: bool) -> None:
        """Per-element array accesses are throughput costs, not bare
        latencies: loops over cached arrays pipeline, so most of the cost
        lands in the issue domain (which divergence and load balance
        modulate) with only the cache-miss fraction paying a transaction.

        This is the hottest charge in any kernel (every scalar assign and
        array element lands here), so the engine bindings below inline
        the same branch structure instead of calling through; the two
        copies execute on opposite sides of the engine differential
        suite, which compares their cost output bit for bit."""
        if buffer is None:  # private/local: register-speed
            charges.instructions += 1.0
            return
        space = getattr(buffer, "space", None)
        if space == "texture":
            # Dedicated on-chip texture cache: small tables stay resident.
            charges.instructions += 2.0
            charges.texture_accesses += 0.02
        elif space == "global":
            # Random global element reads miss far more often.
            charges.instructions += 2.0
            charges.global_txn += 0.08
        elif space == "shared":
            charges.shared_accesses += 1.0
        else:  # private/local: register-speed
            charges.instructions += 1.0

    def bind_charges(self, charges: LaneCharges) -> Callable[[Any, bool], None]:
        def charge(buffer: Any, is_store: bool) -> None:
            if buffer is None:
                charges.instructions += 1.0
                return
            space = getattr(buffer, "space", None)
            if space == "texture":
                charges.instructions += 2.0
                charges.texture_accesses += 0.02
            elif space == "global":
                charges.instructions += 2.0
                charges.global_txn += 0.08
            elif space == "shared":
                charges.shared_accesses += 1.0
            else:
                charges.instructions += 1.0

        return charge

    def bind_state(self, state: Any) -> Callable[[Any, bool], None]:
        def charge(buffer: Any, is_store: bool) -> None:
            charges = state.charges
            if buffer is None:
                charges.instructions += 1.0
                return
            space = getattr(buffer, "space", None)
            if space == "texture":
                charges.instructions += 2.0
                charges.texture_accesses += 0.02
            elif space == "global":
                charges.instructions += 2.0
                charges.global_txn += 0.08
            elif space == "shared":
                charges.shared_accesses += 1.0
            else:
                charges.instructions += 1.0

        return charge

    # Formulas live in the bound forms (launch-constant arithmetic done
    # once per builtin table); the per-event methods delegate so one-off
    # callers and the bound hot path can never drift apart.

    def record_read(self, charges: LaneCharges, counters: Any,
                    nbytes: int, txn_bytes: int, stealing: bool) -> None:
        self.bind_record_read(txn_bytes, stealing)(charges, counters, nbytes)

    def kv_emit(self, charges: LaneCharges, counters: Any,
                nbytes: int, vec: int) -> None:
        self.bind_kv_emit(nbytes, vec)(charges, counters)

    def kv_move(self, charges: LaneCharges, kv_bytes: int, txn_bytes: int,
                vec: int, cooperative: bool) -> None:
        self.bind_kv_move(kv_bytes, txn_bytes, vec, cooperative)(charges)

    def math_call(self, charges: LaneCharges, counters: Any) -> None:
        self.bind_math_call()(charges, counters)

    def string_call(self, charges: LaneCharges, length: int,
                    vec: int) -> None:
        self.bind_string_call(vec)(charges, length)

    def bind_record_read(self, txn_bytes: int,
                         stealing: bool) -> Callable[[Any, Any, int], None]:
        # The record is read from the device input buffer. Each lane's
        # record is a *sequential* byte stream: hardware prefetching hides
        # much of the latency, so part of the cost is issue-side work
        # (byte handling) proportional to the record length — which is
        # what record stealing balances.
        # Latency component (amortized over many in-flight requests) plus
        # DRAM-throughput cycles charged as issue-side work.
        txn_denom = 8.0 * txn_bytes

        def charge(charges: LaneCharges, counters: Any, nbytes: int) -> None:
            if stealing:
                charges.shared_atomics += 1.0
            charges.global_txn += max(0.25, nbytes / txn_denom)
            charges.instructions += nbytes / 8.0 + nbytes / 64.0
            counters.bytes_in += nbytes

        return charge

    def bind_kv_emit(self, nbytes: int,
                     vec: int) -> Callable[[Any, Any], None]:
        # Vectorized stores cut the issue count by the vector width; the
        # per-thread store stream write-combines, so the latency component
        # is amortized and shrinks up to 2x with wider accesses.
        instr = nbytes / vec
        txn = max(0.25, nbytes / (16.0 * min(vec, 2)))

        def charge(charges: LaneCharges, counters: Any) -> None:
            counters.bytes_out += nbytes
            charges.instructions += instr
            charges.global_txn += txn

        return charge

    def bind_kv_move(self, kv_bytes: int, txn_bytes: int, vec: int,
                     cooperative: bool) -> Callable[[Any], None]:
        if cooperative:
            # Lane-per-element cooperative move: coalesced transactions.
            txn = max(1.0, kv_bytes / txn_bytes)
            instr = max(1.0, kv_bytes / (4.0 * vec))
        else:
            # Single active lane, word-at-a-time (uncoalesced).
            txn = max(1.0, kv_bytes / 8.0)
            instr = kv_bytes / 2.0

        def charge(charges: LaneCharges) -> None:
            charges.global_txn += txn
            charges.instructions += instr

        return charge

    def bind_math_call(self) -> Callable[[Any, Any], None]:
        def charge(charges: LaneCharges, counters: Any) -> None:
            charges.instructions += MATH_CALL_INSTR
            counters.fp_ops += 4

        return charge

    def bind_string_call(self, vec: int) -> Callable[[Any, int], None]:
        # Vectorized string ops move char4 at a time (paper §4.1).
        denom = max(vec, 1)

        def charge(charges: LaneCharges, length: int) -> None:
            charges.instructions += max(1.0, length / denom)

        return charge


class CountingChargeHook(ChargeHook):
    """Wraps another hook, tallying every charge event into a metrics
    sink (``repro.obs.MetricsRegistry`` or anything with ``inc``).

    Costs are untouched — each event delegates to the inner hook's
    formula — so a traced run charges bit-identical WarpCost/KernelCost
    to an untraced one; only the event tallies are added. The executor
    installs this wrapper per launch only while a recorder is enabled,
    keeping the disabled hot path on the bare profile.

    ``profile_key`` is inherited from the inner hook: the compiled
    kernel-body cache keys on the *cost formulas*, which counting does
    not change, so traced and untraced launches share one artifact.
    """

    def __init__(self, inner: ChargeHook, metrics: Any) -> None:
        self.inner = inner
        self.metrics = metrics
        self.profile_key = inner.profile_key

    def access(self, charges: LaneCharges, buffer: Any,
               is_store: bool) -> None:
        self.metrics.inc("gpu.accesses")
        self.inner.access(charges, buffer, is_store)

    def record_read(self, charges: LaneCharges, counters: Any,
                    nbytes: int, txn_bytes: int, stealing: bool) -> None:
        self.metrics.inc("gpu.record_reads")
        self.inner.record_read(charges, counters, nbytes, txn_bytes, stealing)

    def kv_emit(self, charges: LaneCharges, counters: Any,
                nbytes: int, vec: int) -> None:
        self.metrics.inc("gpu.kv_emits")
        self.inner.kv_emit(charges, counters, nbytes, vec)

    def kv_move(self, charges: LaneCharges, kv_bytes: int, txn_bytes: int,
                vec: int, cooperative: bool) -> None:
        self.metrics.inc("gpu.kv_moves")
        self.inner.kv_move(charges, kv_bytes, txn_bytes, vec, cooperative)

    def math_call(self, charges: LaneCharges, counters: Any) -> None:
        self.metrics.inc("gpu.math_calls")
        self.inner.math_call(charges, counters)

    def string_call(self, charges: LaneCharges, length: int,
                    vec: int) -> None:
        self.metrics.inc("gpu.string_calls")
        self.inner.string_call(charges, length, vec)

    # The bound (hot-path) forms wrap the inner hook's bound closures so
    # the inner profile's launch-constant folding is preserved.

    def bind_record_read(self, txn_bytes: int,
                         stealing: bool) -> Callable[[Any, Any, int], None]:
        inner = self.inner.bind_record_read(txn_bytes, stealing)
        inc = self.metrics.inc

        def charge(charges: LaneCharges, counters: Any, nbytes: int) -> None:
            inc("gpu.record_reads")
            inner(charges, counters, nbytes)

        return charge

    def bind_kv_emit(self, nbytes: int,
                     vec: int) -> Callable[[Any, Any], None]:
        inner = self.inner.bind_kv_emit(nbytes, vec)
        inc = self.metrics.inc

        def charge(charges: LaneCharges, counters: Any) -> None:
            inc("gpu.kv_emits")
            inner(charges, counters)

        return charge

    def bind_kv_move(self, kv_bytes: int, txn_bytes: int, vec: int,
                     cooperative: bool) -> Callable[[Any], None]:
        inner = self.inner.bind_kv_move(kv_bytes, txn_bytes, vec, cooperative)
        inc = self.metrics.inc

        def charge(charges: LaneCharges) -> None:
            inc("gpu.kv_moves")
            inner(charges)

        return charge

    def bind_math_call(self) -> Callable[[Any, Any], None]:
        inner = self.inner.bind_math_call()
        inc = self.metrics.inc

        def charge(charges: LaneCharges, counters: Any) -> None:
            inc("gpu.math_calls")
            inner(charges, counters)

        return charge

    def bind_string_call(self, vec: int) -> Callable[[Any, int], None]:
        inner = self.inner.bind_string_call(vec)
        inc = self.metrics.inc

        def charge(charges: LaneCharges, length: int) -> None:
            inc("gpu.string_calls")
            inner(charges, length)

        return charge

    def bind_charges(self, charges: LaneCharges) -> Callable[[Any, bool], None]:
        inner = self.inner.bind_charges(charges)
        inc = self.metrics.inc

        def charge(buffer: Any, is_store: bool) -> None:
            inc("gpu.accesses")
            inner(buffer, is_store)

        return charge

    def bind_state(self, state: Any) -> Callable[[Any, bool], None]:
        inner = self.inner.bind_state(state)
        inc = self.metrics.inc

        def charge(buffer: Any, is_store: bool) -> None:
            inc("gpu.accesses")
            inner(buffer, is_store)

        return charge


#: The profile every launch uses unless an experiment injects another.
DEFAULT_CHARGE_HOOK = SpaceChargeHook()
