"""Discrete-event cluster simulation of one MapReduce job.

Wires HDFS block placement, the JobTracker, per-node TaskTrackers, the
heartbeat protocol, and a scheduling policy into the event loop, then
runs every map task to completion and adds the reduce-phase estimate.
Task durations come from a :class:`TaskDurationModel` (calibrated from
the single-task functional simulations; see
``repro.experiments.calibrate``) with deterministic per-task jitter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import partial

from ..costmodel.io import IoModel
from ..errors import HadoopError
from ..hdfs import Hdfs
from ..obs import trace as obs
from ..scheduling.tail import SchedulingPolicy
from .events import EventLoop
from .job import JobConf, JobResult
from .jobtracker import JobTracker
from .shuffle import estimate_reduce_phase
from .tasks import MapTask, SlotKind, TaskState
from .tasktracker import TaskTracker


@dataclass
class TaskDurationModel:
    """Samples per-task durations with deterministic jitter.

    ``failure_rate`` injects task failures (fault-tolerance tests): a
    failed attempt consumes half its duration, is reported to the
    JobTracker, and is rescheduled (paper §5.1).

    ``node_speed_factors`` models *inter-node* heterogeneity — the
    paper's explicit future work ('We leave handling of extreme
    inter-node heterogeneity to future work', §9): a factor > 1 makes a
    node's CPU tasks proportionally slower (older processors), while its
    GPUs keep their own speed.
    """

    cpu_seconds: float
    gpu_seconds: float
    jitter: float = 0.04
    nonlocal_penalty: float = 2.0
    failure_rate: float = 0.0
    seed: int = 99
    node_speed_factors: dict[int, float] | None = None

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def sample(self, slot: SlotKind, data_local: bool,
               node: int | None = None) -> tuple[float, bool]:
        """(duration, fails) for one attempt."""
        base = self.cpu_seconds if slot is SlotKind.CPU else self.gpu_seconds
        if (slot is SlotKind.CPU and node is not None
                and self.node_speed_factors is not None):
            base *= self.node_speed_factors.get(node, 1.0)
        jit = self._rng.uniform(-self.jitter, self.jitter)
        duration = base * (1.0 + jit)
        if not data_local:
            duration += self.nonlocal_penalty
        fails = self._rng.random() < self.failure_rate
        return duration, fails


@dataclass
class _Attempt:
    """One execution attempt of a map task (speculation can create two)."""

    task: MapTask
    tracker: TaskTracker
    slot: SlotKind
    duration: float
    speculative: bool = False
    #: Open trace span + slot-lane index, set only while tracing.
    span: obs.SpanEvent | None = None
    lane: int | None = None


class ClusterSimulator:
    """Runs one job under one scheduling policy.

    ``speculative`` enables Hadoop's speculative execution (Table 3 rows;
    the paper ran with it Off): once no pending work remains, stragglers
    — running attempts projected to finish well after the completed-task
    mean — get a backup attempt on a free CPU slot; the first finisher
    wins and the loser's result is discarded.
    """

    #: A running task is a straggler once its projected completion exceeds
    #: this multiple of the mean completed-task duration.
    SPECULATION_THRESHOLD = 1.4

    def __init__(self, job: JobConf, policy: SchedulingPolicy,
                 durations: TaskDurationModel | None = None,
                 speculative: bool | None = None):
        self.job = job
        self.policy = policy
        cluster = job.cluster
        self.durations = durations or TaskDurationModel(
            cpu_seconds=job.cpu_task_seconds,
            gpu_seconds=job.gpu_task_seconds,
            jitter=job.duration_jitter,
            nonlocal_penalty=job.nonlocal_read_penalty,
            seed=job.seed,
        )
        self.io = IoModel.for_cluster(cluster)

        # Block placement through the simulated HDFS namenode.
        hdfs = Hdfs(
            num_nodes=cluster.num_slaves,
            block_size=cluster.hdfs_block_size,
            replication=cluster.hdfs_replication,
            seed=job.seed,
        )
        f = hdfs.put_virtual(f"{job.name}.input", job.num_map_tasks)
        self.tasks = [
            MapTask(
                task_id=i,
                split_index=i,
                preferred_nodes=f.blocks[i].replicas,
            )
            for i in range(job.num_map_tasks)
        ]
        self.jobtracker = JobTracker(
            tasks=self.tasks,
            policy=policy,
            num_slaves=cluster.num_slaves,
            gpus_per_node=cluster.gpus_per_node if policy.uses_gpus else 0,
        )
        self.trackers = [
            TaskTracker(
                node=n,
                cpu_slots=cluster.max_map_slots_per_node,
                num_gpus=cluster.gpus_per_node if policy.uses_gpus else 0,
                policy=policy,
            )
            for n in range(cluster.num_slaves)
        ]
        self.loop = EventLoop()
        # One prebound callback per tracker: heartbeats are by far the most
        # scheduled event (hundreds of thousands in a 1000-node sweep), so
        # allocating a fresh closure per beat is measurable waste.
        self._hb_interval = cluster.heartbeat_interval_s
        self._hb_fns = [partial(self._heartbeat, t) for t in self.trackers]
        self._map_phase_end = 0.0
        self._failures = 0
        self.speculative = (
            speculative if speculative is not None
            else cluster.speculative_execution
        )
        self._running_attempts: dict[int, _Attempt] = {}  # task_id → primary
        self._speculated: set[int] = set()
        self._completed_durations: list[float] = []
        self.wasted_speculation_seconds = 0.0
        self.speculative_attempts = 0
        #: Free slot-lane indices per (node, slot kind), only while tracing.
        self._free_lanes: dict[tuple[int, SlotKind], list[int]] = {}
        self._lane_high: dict[tuple[int, SlotKind], int] = {}

    # -- tracing ----------------------------------------------------------------

    def _trace_attempt_start(self, attempt: _Attempt) -> None:
        """Open the attempt's span on a concrete slot lane of its node.

        Lanes mirror the tracker's slot pool: the lowest free index is
        taken at launch and returned at release, so concurrent attempts
        on one node render side by side (cpu0..cpuN / gpu0..gpuM) and a
        lane never holds two overlapping spans.
        """
        rec = obs.active()
        if not rec.enabled:
            return
        key = (attempt.tracker.node, attempt.slot)
        free = self._free_lanes.setdefault(key, [])
        if free:
            free.sort()
            attempt.lane = free.pop(0)
        else:
            attempt.lane = self._lane_high.get(key, 0)
            self._lane_high[key] = attempt.lane + 1
        task = attempt.task
        attempt.span = rec.begin(
            f"map#{task.task_id}", "attempt",
            f"node{attempt.tracker.node}",
            f"{attempt.slot.value}{attempt.lane}",
            ts=self.loop.now,
            args={
                "task": task.task_id,
                "slot": attempt.slot.value,
                "data_local": task.data_local,
                "speculative": attempt.speculative,
                "forced_gpu": task.forced_gpu,
            },
        )
        rec.inc("sim.attempts")

    def _trace_attempt_end(self, attempt: _Attempt, outcome: str) -> None:
        """Close the attempt's span and return its lane to the pool."""
        rec = obs.active()
        if not rec.enabled or attempt.span is None:
            return
        rec.end(attempt.span, ts=self.loop.now, args={"outcome": outcome})
        attempt.span = None
        if attempt.lane is not None:
            key = (attempt.tracker.node, attempt.slot)
            self._free_lanes.setdefault(key, []).append(attempt.lane)
            attempt.lane = None
        rec.inc(f"sim.attempts.{outcome}")
        if outcome == "completed":
            rec.counter(
                "map-progress", "cluster-sim",
                {"completed": float(len(self._completed_durations))},
                ts=self.loop.now,
            )

    def _trace_job_end(self, rec: obs.TraceRecorder, job_span: obs.SpanEvent,
                       reduce_phase, completed, gpu_tasks: int,
                       local: int) -> None:
        """Reduce-phase spans, end-of-job counters, and the job span close."""
        start = self._map_phase_end
        for name, seconds in (
            ("shuffle", reduce_phase.shuffle_seconds),
            ("merge", reduce_phase.merge_seconds),
            ("reduce", reduce_phase.reduce_seconds),
            ("write", reduce_phase.write_seconds),
        ):
            rec.complete(name, "reduce-phase", "cluster-sim", "reduce",
                         seconds, ts=start)
            start += seconds
        rec.inc("sim.tasks.gpu", gpu_tasks)
        rec.inc("sim.tasks.cpu", len(completed) - gpu_tasks)
        rec.inc("sim.tasks.tail_forced",
                sum(1 for t in completed if t.forced_gpu))
        rec.inc("sim.tasks.data_local", local)
        rec.inc("sim.failures", self._failures)
        rec.gauge("sim.map_phase_seconds", self._map_phase_end)
        rec.gauge("sim.job_seconds", self._map_phase_end + reduce_phase.total)
        rec.end(job_span, ts=self._map_phase_end + reduce_phase.total,
                args={"map_phase_seconds": self._map_phase_end,
                      "reduce_phase_seconds": reduce_phase.total})

    # -- event handlers ---------------------------------------------------------

    def _heartbeat(self, tracker: TaskTracker) -> None:
        if self.jobtracker.all_maps_done:
            return  # cluster drains; no more heartbeats needed
        response = self.jobtracker.handle_heartbeat(tracker.make_heartbeat())
        rec = obs.active()
        if rec.enabled:
            rec.inc("sim.heartbeats")
            if response.task_ids:
                rec.inc("sim.grants", len(response.task_ids))
        tracker.maps_remaining_per_node = response.maps_remaining_per_node
        for task_id in response.task_ids:
            task = self.jobtracker.get_task(task_id)
            self._launch(tracker, task)
        if self.speculative and not response.task_ids \
                and self.jobtracker.pending_maps == 0:
            self._maybe_speculate(tracker)
        self.loop.schedule(self._hb_interval, self._hb_fns[tracker.node])

    def _maybe_speculate(self, tracker: TaskTracker) -> None:
        """Launch a backup attempt for the worst straggler on a free CPU
        slot (Hadoop's speculative execution, simplified to projected
        completion vs the completed-task mean)."""
        if not self._completed_durations:
            return
        mean = sum(self._completed_durations) / len(self._completed_durations)
        now = self.loop.now
        worst: _Attempt | None = None
        worst_remaining = 0.0
        for task_id, attempt in self._running_attempts.items():
            if task_id in self._speculated:
                continue
            projected = attempt.task.start_time + attempt.duration
            if projected - attempt.task.start_time \
                    < self.SPECULATION_THRESHOLD * mean:
                continue
            remaining = projected - now
            if remaining > worst_remaining and remaining > mean * 0.5:
                worst, worst_remaining = attempt, remaining
        if worst is None or not tracker.reserve_cpu_slot():
            return
        duration, _fails = self.durations.sample(
            SlotKind.CPU, data_local=False, node=tracker.node
        )
        backup = _Attempt(task=worst.task, tracker=tracker,
                          slot=SlotKind.CPU, duration=duration,
                          speculative=True)
        self._speculated.add(worst.task.task_id)
        self.speculative_attempts += 1
        rec = obs.active()
        if rec.enabled:
            rec.instant(
                "speculate", "scheduling", "cluster-sim", "decisions",
                ts=self.loop.now,
                args={"task": worst.task.task_id, "node": tracker.node,
                      "remaining": worst_remaining},
            )
            rec.inc("sim.speculative_attempts")
        self._trace_attempt_start(backup)
        self.loop.schedule(duration, lambda: self._attempt_done(backup))

    def _launch(self, tracker: TaskTracker, task: MapTask) -> None:
        slot = tracker.place(task)
        if slot is SlotKind.GPU and task in tracker.gpu_queue:
            return  # queued behind a busy device; started on free-up
        self._start(tracker, task)

    def _start(self, tracker: TaskTracker, task: MapTask) -> None:
        task.assign(tracker.node, self.loop.now)
        duration, fails = self.durations.sample(
            task.slot, task.data_local, node=tracker.node
        )
        attempt = _Attempt(task=task, tracker=tracker, slot=task.slot,
                           duration=duration)
        self._running_attempts[task.task_id] = attempt
        self._trace_attempt_start(attempt)
        if fails:
            self.loop.schedule(
                duration * 0.5, lambda: self._fail(attempt, duration * 0.5)
            )
        else:
            self.loop.schedule(duration, lambda: self._attempt_done(attempt))

    def _fail(self, attempt: _Attempt, elapsed: float) -> None:
        task, tracker = attempt.task, attempt.tracker
        if task.state is TaskState.COMPLETED:
            # A speculative backup already finished this task.
            tracker.release_slot(attempt.slot, elapsed)
            self._trace_attempt_end(attempt, "wasted")
            self._drain_gpu_queue(tracker)
            return
        task.fail(self.loop.now)
        tracker.release_slot(attempt.slot, elapsed)
        tracker.stats.failures += 1
        self._failures += 1
        self._running_attempts.pop(task.task_id, None)
        self._trace_attempt_end(attempt, "failed")
        self.jobtracker.task_failed(task)
        self._drain_gpu_queue(tracker)

    def _attempt_done(self, attempt: _Attempt) -> None:
        task, tracker = attempt.task, attempt.tracker
        tracker.release_slot(attempt.slot, attempt.duration)
        if task.state is TaskState.COMPLETED:
            # The other (primary or speculative) attempt already won.
            self.wasted_speculation_seconds += attempt.duration
            self._trace_attempt_end(attempt, "wasted")
            self._drain_gpu_queue(tracker)
            return
        task.complete(self.loop.now)
        if attempt.speculative:
            task.node = tracker.node
            task.slot = attempt.slot
        self._running_attempts.pop(task.task_id, None)
        self._completed_durations.append(attempt.duration)
        self._trace_attempt_end(attempt, "completed")
        self.jobtracker.note_completed(task)
        self._map_phase_end = max(self._map_phase_end, self.loop.now)
        self._drain_gpu_queue(tracker)

    def _drain_gpu_queue(self, tracker: TaskTracker) -> None:
        queued = tracker.queued_gpu_task()
        if queued is not None:
            self._start(tracker, queued)

    # -- run ---------------------------------------------------------------------

    def run(self) -> JobResult:
        rec = obs.active()
        job_span = None
        if rec.enabled:
            job_span = rec.begin(
                f"job {self.job.name}", "job", "cluster-sim", "job",
                ts=0.0,
                args={
                    "cluster": self.job.cluster.name,
                    "policy": self.policy.name,
                    "map_tasks": len(self.tasks),
                    "reduce_tasks": self.job.num_reduce_tasks,
                },
            )

        # Stagger initial heartbeats as real TaskTrackers do.
        interval = self._hb_interval
        num = max(len(self.trackers), 1)
        for i, fn in enumerate(self._hb_fns):
            self.loop.schedule(interval * i / num, fn)
        self.loop.run()

        if not self.jobtracker.all_maps_done:
            raise HadoopError(
                f"simulation drained with {self.jobtracker.remaining_maps} "
                "maps unfinished"
            )

        reduce_phase = estimate_reduce_phase(self.job, self.io)
        completed = [t for t in self.tasks if t.state is TaskState.COMPLETED]
        gpu_tasks = sum(1 for t in completed if t.slot is SlotKind.GPU)
        local = sum(1 for t in completed if t.data_local)
        if rec.enabled and job_span is not None:
            self._trace_job_end(rec, job_span, reduce_phase, completed,
                                gpu_tasks, local)
        return JobResult(
            job_seconds=self._map_phase_end + reduce_phase.total,
            map_phase_seconds=self._map_phase_end,
            reduce_phase_seconds=reduce_phase.total,
            cpu_tasks=len(completed) - gpu_tasks,
            gpu_tasks=gpu_tasks,
            forced_gpu_tasks=sum(1 for t in completed if t.forced_gpu),
            data_local_fraction=local / max(len(completed), 1),
            failures=self._failures,
            max_observed_speedup=self.jobtracker.max_speedup,
            timeline=[
                (t.finish_time, t.node or 0, t.slot.value if t.slot else "?")
                for t in completed
            ],
        )
