"""Hadoop Streaming (paper §2.2, [19]).

'Map, combine, and reduce can be written as unix-style "filter"
functions': each phase is an executable that reads records or KV lines
on stdin and writes KV lines on stdout. HeteroDoop plugs into exactly
this mechanism — the original mini-C source *is* the CPU executable, and
the GPU driver substitutes the translated kernels behind the same
interface.

This module is that interface: :class:`StreamingFilter` wraps a mini-C
program as a reusable filter, and :class:`StreamingPipeline` chains
map → sort → combine the way a Hadoop map task's user-code side does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..apps.base import Application
from ..errors import HadoopError
from ..minic import cast as A
from ..minic.interpreter import ExecCounters, run_filter
from .shuffle import sort_kv_run


def format_kv(pairs: list[tuple[Any, Any]]) -> str:
    """Serialize KV pairs as Streaming's tab-separated lines."""
    return "".join(f"{k}\t{v}\n" for k, v in pairs)


def parse_kv(text: str) -> list[tuple[Any, Any]]:
    """Parse Streaming KV lines into typed pairs."""
    from .local import parse_kv_line

    return [parse_kv_line(line) for line in text.splitlines() if line]


@dataclass
class StreamingFilter:
    """One phase executable (map, combine, or reduce) as a text filter."""

    program: A.Program
    name: str = "filter"
    total_counters: ExecCounters = field(default_factory=ExecCounters)
    invocations: int = 0

    def __call__(self, stdin_text: str) -> str:
        output, counters = run_filter(self.program, stdin_text)
        self.total_counters = self.total_counters.merged(counters)
        self.invocations += 1
        return output

    def run_kv(self, pairs: list[tuple[Any, Any]]) -> list[tuple[Any, Any]]:
        """Feed KV pairs in, get KV pairs out (combine/reduce phases)."""
        return parse_kv(self(format_kv(pairs)))


@dataclass
class StreamingPipeline:
    """The user-code side of one CPU map task: map filter over the raw
    split, per-partition sort, then the combine filter (when present)."""

    mapper: StreamingFilter
    combiner: StreamingFilter | None = None

    @classmethod
    def for_app(cls, app: Application) -> "StreamingPipeline":
        mapper = StreamingFilter(app.map_program(), name=f"{app.short}-map")
        combiner = None
        combine_prog = app.combine_program()
        if combine_prog is not None:
            combiner = StreamingFilter(combine_prog, name=f"{app.short}-combine")
        return cls(mapper=mapper, combiner=combiner)

    def run_split(self, split_text: str,
                  partition_of) -> dict[int, list[tuple[Any, Any]]]:
        """Run one fileSplit through map → partition → sort → combine.

        ``partition_of`` maps a key to its reduce partition.
        """
        pairs = parse_kv(self.mapper(split_text))
        partitions: dict[int, list[tuple[Any, Any]]] = {}
        for key, value in pairs:
            partitions.setdefault(partition_of(key), []).append((key, value))
        out: dict[int, list[tuple[Any, Any]]] = {}
        for part, kvs in partitions.items():
            kvs = sort_kv_run(kvs)
            if self.combiner is not None:
                out[part] = self.combiner.run_kv(kvs)
            else:
                out[part] = kvs
        return out

    @property
    def map_counters(self) -> ExecCounters:
        return self.mapper.total_counters

    @property
    def combine_counters(self) -> ExecCounters | None:
        return self.combiner.total_counters if self.combiner else None
