"""Task state machine (map tasks; reduce is modelled at phase level)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import HadoopError


class TaskState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"


class SlotKind(enum.Enum):
    CPU = "cpu"
    GPU = "gpu"


@dataclass
class MapTask:
    """One map task (processes one fileSplit)."""

    task_id: int
    split_index: int
    preferred_nodes: tuple[int, ...] = ()   # replica holders (data locality)
    state: TaskState = TaskState.PENDING
    attempts: int = 0
    node: int | None = None
    slot: SlotKind | None = None
    start_time: float = 0.0
    finish_time: float = 0.0
    data_local: bool = False
    forced_gpu: bool = False                # placed by the tail scheduler

    def assign(self, node: int, now: float) -> None:
        if self.state is TaskState.RUNNING:
            raise HadoopError(f"task {self.task_id} already running")
        self.state = TaskState.RUNNING
        self.node = node
        self.start_time = now
        self.attempts += 1
        self.data_local = node in self.preferred_nodes

    def complete(self, now: float) -> None:
        if self.state is not TaskState.RUNNING:
            raise HadoopError(f"task {self.task_id} not running")
        self.state = TaskState.COMPLETED
        self.finish_time = now

    def fail(self, now: float) -> None:
        if self.state is not TaskState.RUNNING:
            raise HadoopError(f"task {self.task_id} not running")
        self.state = TaskState.FAILED
        self.finish_time = now

    def reset_for_retry(self) -> None:
        if self.state is not TaskState.FAILED:
            raise HadoopError("only failed tasks can be retried")
        self.state = TaskState.PENDING
        self.node = None
        self.slot = None
        self.forced_gpu = False

    @property
    def duration(self) -> float:
        return self.finish_time - self.start_time


@dataclass
class NodeStats:
    """Per-TaskTracker execution statistics (feeds aveSpeedup)."""

    cpu_tasks: int = 0
    gpu_tasks: int = 0
    cpu_seconds: float = 0.0
    gpu_seconds: float = 0.0
    failures: int = 0

    def record(self, slot: SlotKind, seconds: float) -> None:
        if slot is SlotKind.CPU:
            self.cpu_tasks += 1
            self.cpu_seconds += seconds
        else:
            self.gpu_tasks += 1
            self.gpu_seconds += seconds

    @property
    def ave_speedup(self) -> float:
        """Observed GPU-slot speedup over a CPU slot (paper §6.2). Falls
        back to 1.0 until both kinds have completed at least once."""
        if self.cpu_tasks == 0 or self.gpu_tasks == 0:
            return 1.0
        mean_cpu = self.cpu_seconds / self.cpu_tasks
        mean_gpu = self.gpu_seconds / self.gpu_tasks
        if mean_gpu <= 0:
            return 1.0
        return mean_cpu / mean_gpu
