"""Hadoop 1.x engine (paper §2.2): JobTracker/TaskTracker orchestration
with heartbeats and slots, in two complementary forms:

* :mod:`repro.hadoop.local` — a **functional** single-process job runner
  (Hadoop's LocalJobRunner analogue): real map → shuffle → sort → reduce
  over real bytes, on the CPU path, the GPU path, or both. Used by the
  correctness tests and the examples.
* :mod:`repro.hadoop.simulate` — a **discrete-event cluster simulator**
  driving thousands of tasks over 48+ nodes with heartbeat scheduling,
  data locality, and the GPU-first / tail-scheduling policies. Used by
  the Fig. 3/4 experiments.
"""

from .events import EventLoop
from .job import JobConf, JobResult
from .tasks import MapTask, TaskState
from .simulate import ClusterSimulator, TaskDurationModel
from .local import LocalJobRunner

__all__ = [
    "EventLoop",
    "JobConf",
    "JobResult",
    "MapTask",
    "TaskState",
    "ClusterSimulator",
    "TaskDurationModel",
    "LocalJobRunner",
]
