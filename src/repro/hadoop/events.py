"""Minimal discrete-event loop."""

from __future__ import annotations

import heapq
from typing import Callable

from ..errors import HadoopError


class EventLoop:
    """Time-ordered callback queue. Ties break by insertion order, so the
    simulation is fully deterministic."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self.now = 0.0
        self._running = False

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        if delay < 0:
            raise HadoopError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn))
        self._seq += 1

    def schedule_at(self, when: float, fn: Callable[[], None]) -> None:
        if when < self.now:
            raise HadoopError(f"cannot schedule at {when} < now {self.now}")
        heapq.heappush(self._heap, (when, self._seq, fn))
        self._seq += 1

    def run(self, max_events: int = 20_000_000,
            until: Callable[[], bool] | None = None) -> None:
        """Drain the queue; ``until`` (checked after each event) stops early."""
        if self._running:
            raise HadoopError("event loop is not reentrant")
        self._running = True
        # The no-predicate loop is the hot path (1000-node sweeps dispatch
        # hundreds of thousands of heartbeats); hoisting the attribute
        # lookups and the `until` test out of it is worth ~15% wall time.
        heap = self._heap
        pop = heapq.heappop
        try:
            events = 0
            if until is None:
                while heap:
                    when, _seq, fn = pop(heap)
                    self.now = when
                    fn()
                    events += 1
                    if events > max_events:
                        raise HadoopError(
                            f"event budget exhausted ({max_events}); livelock?"
                        )
            else:
                while heap:
                    when, _seq, fn = pop(heap)
                    self.now = when
                    fn()
                    events += 1
                    if events > max_events:
                        raise HadoopError(
                            f"event budget exhausted ({max_events}); livelock?"
                        )
                    if until():
                        return
        finally:
            self._running = False

    @property
    def pending(self) -> int:
        return len(self._heap)
