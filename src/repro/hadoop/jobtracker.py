"""The JobTracker: pending-task bookkeeping and heartbeat-driven grants."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..errors import HadoopError
from ..obs import trace as obs
from ..scheduling.tail import SchedulingPolicy
from .heartbeat import Heartbeat, HeartbeatResponse
from .tasks import MapTask, TaskState


@dataclass
class JobTracker:
    """Tracks the map-task pool for one job and answers heartbeats.

    Scheduling is first-come-first-serve over heartbeats (paper §6.2),
    preferring data-local tasks for the requesting node (stock Hadoop
    behaviour the paper inherits). Per-node locality queues keep each
    heartbeat O(granted), not O(pending).
    """

    tasks: list[MapTask]
    policy: SchedulingPolicy
    num_slaves: int
    gpus_per_node: int
    max_task_attempts: int = 4
    max_speedup: float = 1.0     # max aveSpeedup seen across TTs (§6.2)
    _fifo: deque[MapTask] = field(default_factory=deque, init=False)
    _local: dict[int, deque[MapTask]] = field(default_factory=dict, init=False)
    _granted: set[int] = field(default_factory=set, init=False)
    _completed: int = field(default=0, init=False)
    _pending_count: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.num_slaves < 1:
            raise HadoopError("JobTracker needs slaves")
        for task in self.tasks:
            if task.state is TaskState.PENDING:
                self._enqueue(task)

    def _enqueue(self, task: MapTask) -> None:
        self._fifo.append(task)
        self._pending_count += 1
        for node in task.preferred_nodes:
            self._local.setdefault(node, deque()).append(task)

    def _grantable(self, task: MapTask) -> bool:
        return task.state is TaskState.PENDING and task.task_id not in self._granted

    # -- state -------------------------------------------------------------

    def note_completed(self, task: MapTask) -> None:
        self._completed += 1
        self._granted.discard(task.task_id)

    @property
    def remaining_maps(self) -> int:
        """Tasks not yet completed (pending + currently running)."""
        return len(self.tasks) - self._completed

    @property
    def pending_maps(self) -> int:
        return self._pending_count

    @property
    def all_maps_done(self) -> bool:
        return self._completed >= len(self.tasks)

    def note_speedup(self, ave_speedup: float) -> None:
        """'The JobTracker remembers the maximum speedup from the
        TaskTrackers' (§6.2)."""
        if ave_speedup > self.max_speedup:
            self.max_speedup = ave_speedup
            rec = obs.active()
            if rec.enabled:
                rec.gauge("jt.max_speedup", ave_speedup)
                rec.inc("jt.speedup_updates")

    def task_failed(self, task: MapTask) -> None:
        """Reschedule a failed attempt (fault tolerance, §5.1)."""
        if task.attempts >= self.max_task_attempts:
            raise HadoopError(
                f"task {task.task_id} failed {task.attempts} times; job aborted"
            )
        task.reset_for_retry()
        self._granted.discard(task.task_id)
        self._enqueue(task)

    # -- heartbeat handling ---------------------------------------------------

    def handle_heartbeat(self, hb: Heartbeat) -> HeartbeatResponse:
        self.note_speedup(hb.ave_gpu_speedup)
        response = HeartbeatResponse(
            maps_remaining_per_node=self.remaining_maps / self.num_slaves
        )
        if self._pending_count <= 0:
            return response
        grant = self.policy.tasks_to_grant(
            free_cpu_slots=hb.free_cpu_slots,
            free_gpu_slots=hb.free_gpu_slots,
            remaining=self.pending_maps,
            num_gpus_per_node=self.gpus_per_node,
            max_speedup=self.max_speedup,
            num_slaves=self.num_slaves,
        )
        if grant <= 0:
            return response
        chosen = self._pick_tasks(hb.node, grant)
        response.task_ids = [t.task_id for t in chosen]
        return response

    def _pick_tasks(self, node: int, count: int) -> list[MapTask]:
        """Data-local tasks first, then arbitrary (FIFO) — Hadoop's
        locality-aware FIFO. Queues are lazily pruned of tasks already
        granted via another queue.

        The FIFO half is bounded by the policy's ``remote_cap``: once the
        local queue is exhausted, every remaining grantable FIFO task is
        non-local to this node (local ones would still be in its queue),
        so capping the FIFO picks is exactly "at most N remote tasks".
        """
        chosen: list[MapTask] = []
        local = self._local.get(node)
        while local and len(chosen) < count:
            task = local.popleft()
            if self._grantable(task):
                chosen.append(task)
                self._granted.add(task.task_id)
                self._pending_count -= 1
        cap = self.policy.remote_cap(self._pending_count, self.num_slaves)
        if cap is not None:
            count = min(count, len(chosen) + max(cap, 1 - len(chosen)))
        while self._fifo and len(chosen) < count:
            task = self._fifo.popleft()
            if self._grantable(task):
                chosen.append(task)
                self._granted.add(task.task_id)
                self._pending_count -= 1
            elif task.state is TaskState.PENDING and task.task_id in self._granted:
                continue  # stale duplicate from a locality queue
        return chosen

    def get_task(self, task_id: int) -> MapTask:
        return self.tasks[task_id]
