"""Heartbeat messages (paper §2.2, extended per §6.2).

HeteroDoop modifies the stock heartbeat to carry the TaskTracker's
observed average GPU speedup (TT → JT) and the JobTracker's estimate of
remaining maps per node (JT → TT).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class Heartbeat:
    """TaskTracker → JobTracker. A plain slotted dataclass: one is built
    per heartbeat event, and at 1000-node sweep scale the frozen variant's
    ``object.__setattr__`` init showed up in profiles."""

    node: int
    free_cpu_slots: int
    free_gpu_slots: int
    running_tasks: int
    ave_gpu_speedup: float          # HeteroDoop extension (§6.2)


@dataclass(slots=True)
class HeartbeatResponse:
    """JobTracker → TaskTracker."""

    task_ids: list[int] = field(default_factory=list)
    maps_remaining_per_node: float = 0.0   # HeteroDoop extension (§6.2)
