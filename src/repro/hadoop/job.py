"""Job configuration and result records."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import ClusterConfig
from ..errors import ConfigError


@dataclass
class JobConf:
    """Everything the cluster simulator needs to run one job."""

    name: str
    num_map_tasks: int
    num_reduce_tasks: int
    cluster: ClusterConfig
    # Per-task durations (simulated seconds) on one CPU core vs one GPU.
    cpu_task_seconds: float = 60.0
    gpu_task_seconds: float = 10.0
    #: Relative jitter of task durations (paper §7.3 reports <5% variation).
    duration_jitter: float = 0.04
    #: Extra input-read seconds when a map is not data-local.
    nonlocal_read_penalty: float = 2.0
    #: Map output bytes per map task (drives the shuffle/reduce model).
    map_output_bytes: float = 8.0 * 1024 * 1024
    #: Reduce-side compute seconds per reducer (merge + reduce function).
    reduce_compute_seconds: float = 20.0
    seed: int = 1234

    def __post_init__(self) -> None:
        if self.num_map_tasks < 1:
            raise ConfigError("job needs at least one map task")
        if self.num_reduce_tasks < 0:
            raise ConfigError("negative reduce task count")
        if self.cpu_task_seconds <= 0 or self.gpu_task_seconds <= 0:
            raise ConfigError("task durations must be positive")

    @property
    def map_only(self) -> bool:
        return self.num_reduce_tasks == 0

    @property
    def true_gpu_speedup(self) -> float:
        return self.cpu_task_seconds / self.gpu_task_seconds


@dataclass
class JobResult:
    """Outcome of one simulated job."""

    job_seconds: float = 0.0
    map_phase_seconds: float = 0.0
    reduce_phase_seconds: float = 0.0
    cpu_tasks: int = 0
    gpu_tasks: int = 0
    forced_gpu_tasks: int = 0
    data_local_fraction: float = 0.0
    failures: int = 0
    max_observed_speedup: float = 1.0
    #: (finish_time, node, slot-kind) per map task, for timeline plots.
    timeline: list[tuple[float, int, str]] = field(default_factory=list)

    def speedup_over(self, baseline: "JobResult") -> float:
        if self.job_seconds <= 0:
            raise ConfigError("job did not run")
        return baseline.job_seconds / self.job_seconds
