"""Functional single-process job runner (Hadoop's LocalJobRunner).

Executes a complete MapReduce job over real bytes: input splitting,
map tasks on the CPU path (Hadoop Streaming filters) or the GPU path
(translated kernels on the simulated device), hash partitioning, the
shuffle, per-reducer merge sort, and the reduce function. This is the
correctness backbone: CPU output, GPU output, and the app's pure-Python
reference must all agree after reduce — including under the combiner's
§4.2 relaxation.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any

from ..apps.base import Application
from ..config import CLUSTER1, ClusterConfig, OptimizationFlags
from ..costmodel.cpu import CpuTaskModel, CpuTaskTiming
from ..costmodel.io import IoModel
from ..errors import ConfigError, HadoopError
from ..gpu.device import GpuDevice
from ..kvstore import Partitioner
from ..kvstore.coerce import kv_line, parse_kv_line, utf8_len
from ..obs import trace as obs
from ..parallel.pool import (
    list_schedule_makespan,
    resolve_reduce_workers,
    resolve_workers,
)
from ..runtime.gpu_task import GpuTaskResult, GpuTaskRunner
from .shuffle import (
    ReduceTaskTiming,
    decorate_kv_run,
    merge_sorted_runs,
    reduce_task_timing,
    sort_kv_run,
    streaming_sort_key,
)

__all__ = ["LocalJobResult", "LocalJobRunner", "parse_kv_line"]

# Backwards-compatible alias; the shared definition (and the
# decorate-sort that avoids calling it O(n log n) times) lives in
# hadoop.shuffle.
_sort_key = streaming_sort_key


@dataclass
class LocalJobResult:
    """Functional + timing outcome of one local job."""

    output: dict[Any, Any] = field(default_factory=dict)
    map_tasks: int = 0
    gpu_task_results: list[GpuTaskResult] = field(default_factory=list)
    cpu_task_timings: list[CpuTaskTiming] = field(default_factory=list)
    map_output_pairs: int = 0
    shuffle_bytes: int = 0
    #: Worker processes the map phase ran on (1 = serial).
    workers: int = 1
    #: Worker processes the reduce phase ran on (1 = serial).
    reduce_workers: int = 1
    #: Per-reduce-task timings in partition order (empty for map-only
    #: jobs, whose output is written by the map tasks themselves).
    reduce_task_timings: list[ReduceTaskTiming] = field(default_factory=list)

    def task_seconds(self) -> list[float]:
        """Per-map-task simulated seconds, in task-index order."""
        return [r.seconds for r in self.gpu_task_results] + [
            t.total for t in self.cpu_task_timings
        ]

    @property
    def total_map_seconds(self) -> float:
        """Summed per-task map seconds (total device/core *work*).

        This is the Fig. 6-style resource-consumption figure and is
        independent of ``workers`` — N tasks cost the same work whether
        they overlapped or not. For the wall-clock-equivalent duration
        of the map phase, use :attr:`map_critical_path_seconds`.
        """
        return sum(r.seconds for r in self.gpu_task_results) + sum(
            t.total for t in self.cpu_task_timings
        )

    def critical_path_seconds(self, workers: int) -> float:
        """Map-phase makespan if tasks ran on ``workers`` slots (greedy
        in-order list schedule, the pool's own dispatch order)."""
        return list_schedule_makespan(self.task_seconds(), workers)

    @property
    def map_critical_path_seconds(self) -> float:
        """Wall-clock-equivalent map-phase seconds at this run's
        ``workers`` (equals :attr:`total_map_seconds` when serial)."""
        return self.critical_path_seconds(self.workers)

    def reduce_seconds(self) -> list[float]:
        """Per-reduce-task simulated seconds, in partition order."""
        return [t.total for t in self.reduce_task_timings]

    @property
    def total_reduce_seconds(self) -> float:
        """Summed per-reduce-task seconds (total core *work*), the
        reduce-phase analogue of :attr:`total_map_seconds`."""
        return sum(t.total for t in self.reduce_task_timings)

    def reduce_critical_path(self, workers: int) -> float:
        """Reduce-phase makespan if its tasks ran on ``workers`` slots
        (same greedy in-order list schedule as the map phase)."""
        return list_schedule_makespan(self.reduce_seconds(), workers)

    @property
    def reduce_critical_path_seconds(self) -> float:
        """Wall-clock-equivalent reduce-phase seconds at this run's
        ``reduce_workers``."""
        return self.reduce_critical_path(self.reduce_workers)


class LocalJobRunner:
    """Run a full job for one application in-process.

    Parameters
    ----------
    app:
        The benchmark application.
    cluster:
        Supplies the GPU spec, IO rates, and replication factor.
    use_gpu:
        True → map tasks run through the translated kernels on the
        simulated device; False → plain Hadoop Streaming on the CPU path.
    split_bytes:
        fileSplit size for input splitting (tests use small splits; the
        real 256 MB default would make functional runs needlessly slow).
    gpu_engine:
        GPU lane engine name (``"compiled"``/``"tree"``/``"vector"``),
        or None for the process default.
    workers:
        Worker processes for the map phase. None defers to the
        ``REPRO_WORKERS`` environment variable (default 1 = serial); 0
        means one worker per CPU core. Parallel runs produce
        byte-identical output, counters, and simulated seconds — see
        :mod:`repro.parallel`.
    """

    def __init__(
        self,
        app: Application,
        cluster: ClusterConfig = CLUSTER1,
        use_gpu: bool = True,
        opt: OptimizationFlags | None = None,
        num_reducers: int | None = None,
        split_bytes: int = 64 * 1024,
        gpu_engine: str | None = None,
        workers: int | None = None,
    ):
        if split_bytes <= 0:
            raise ConfigError(
                f"split_bytes must be positive, got {split_bytes}"
            )
        if num_reducers is not None and num_reducers < 0:
            raise ConfigError(
                f"num_reducers must be >= 0, got {num_reducers}"
            )
        self.app = app
        self.cluster = cluster
        self.use_gpu = use_gpu
        self.opt = opt if opt is not None else OptimizationFlags.all_on()
        figures = app.cluster1 if cluster.name == "Cluster1" else app.cluster2
        default_reducers = figures.reduce_tasks if figures else 1
        self.num_reducers = (
            num_reducers if num_reducers is not None else default_reducers
        )
        self.split_bytes = split_bytes
        self.gpu_engine = gpu_engine
        self.workers = workers
        self.io = IoModel.for_cluster(cluster)
        self.partitioner = Partitioner(max(self.num_reducers, 1))
        if not use_gpu:
            # Resolved once per job, not per task: the CPU cost model only
            # needs the translated key length (translate_map is memoized,
            # but CPU-only runs shouldn't touch the translator per split).
            self._cpu_key_length = (
                app.translate_map().map_kernel.key_length
                if app.map_source else 16
            )

    # -- input splitting ---------------------------------------------------------

    def split_ranges(self, data: bytes) -> list[tuple[int, int]]:
        """Split boundaries as ``(start, stop)`` byte ranges at
        ~split_bytes, never inside a record (LineRecordReader's
        behaviour). Ranges — not copies — are what the parallel path
        ships to workers; the serial loop slices them locally."""
        ranges: list[tuple[int, int]] = []
        start = 0
        while start < len(data):
            end = min(start + self.split_bytes, len(data))
            if end < len(data):
                nl = data.find(b"\n", end)
                end = len(data) if nl == -1 else nl + 1
            ranges.append((start, end))
            start = end
        return ranges or [(0, 0)]

    def make_splits(self, input_text: str) -> list[bytes]:
        """The split ranges materialized as byte strings."""
        data = input_text.encode("utf-8")
        return [data[a:b] for a, b in self.split_ranges(data)]

    # -- map side ------------------------------------------------------------------

    def _make_gpu_runner(self, device: GpuDevice) -> GpuTaskRunner:
        """One GpuTaskRunner per job: translations are resolved once
        (memoized — see translate_cached) and the host snapshots the
        runner computes are reused by every map task."""
        return GpuTaskRunner(
            self.app.translate_map(self.opt),
            self.app.translate_combine(self.opt),
            device,
            self.io,
            num_reducers=self.num_reducers,
            replication=self.cluster.hdfs_replication,
            min_gpu_mem=self.app.min_gpu_mem,
            engine=self.gpu_engine,
        )

    # Map tasks return partition → decorated runs: streaming-sorted
    # ``(sort_key, (key, value, line))`` entries where ``line`` is the
    # pair's streaming rendering (kv_line). Both the rendering and the
    # sort key are computed exactly once per pair, map-side, and reused
    # for shuffle/output byte accounting, as reducer stdin, and by the
    # reduce merge (which never recomputes keys or re-encodes).

    def _run_gpu_map_task(
        self, split: bytes, runner: GpuTaskRunner, result: LocalJobResult
    ) -> dict[int, list]:
        task = runner.run(split)
        result.gpu_task_results.append(task)
        result.map_output_pairs += task.emitted_pairs
        return task.rendered_runs()

    def _run_cpu_map_task(
        self, split: bytes, result: LocalJobResult,
        task_index: int | None = None,
    ) -> dict[int, list]:
        text = split.decode("utf-8", errors="replace")
        map_out, map_counters = self.app.cpu_map(text)
        pairs = [parse_kv_line(ln) for ln in map_out.splitlines() if ln]
        result.map_output_pairs += len(pairs)

        # Partition, sort each partition, then run the combiner filter.
        parts: dict[int, list[tuple[Any, Any]]] = defaultdict(list)
        for k, v in pairs:
            parts[self.partitioner.partition(k)].append((k, v))
        combined: dict[int, list] = {}
        combine_counters = None
        output_bytes = 0
        for part, kvs in parts.items():
            if self.app.has_combiner:
                kvs = sort_kv_run(kvs)
                text_in = "".join(kv_line(k, v) for k, v in kvs)
                out, counters = self.app.cpu_combine(text_in)
                combine_counters = counters if combine_counters is None \
                    else combine_counters.merged(counters)
                triples = []
                for ln in out.splitlines():
                    if not ln:
                        continue
                    k, v = parse_kv_line(ln)
                    triples.append((k, v, kv_line(k, v)))
                combined[part] = decorate_kv_run(triples)
            else:
                # The decorate-sort below orders the run, so the
                # separate pre-sort pass is only needed to feed the
                # combiner sorted text.
                combined[part] = decorate_kv_run(
                    [(k, v, kv_line(k, v)) for k, v in kvs]
                )
            output_bytes += sum(utf8_len(e[1][2]) for e in combined[part])

        model = CpuTaskModel(self.cluster.cpu, self.io)
        timing = model.task_timing(
            split_bytes=len(split),
            map_counters=map_counters,
            map_kv_pairs=len(pairs),
            key_length=self._cpu_key_length,
            combine_counters=combine_counters,
            output_bytes=output_bytes,
            map_only=self.app.map_only,
            replication=self.cluster.hdfs_replication,
        )
        result.cpu_task_timings.append(timing)

        rec = obs.active()
        if rec.enabled:
            self._record_cpu_task_trace(rec, timing, len(split), len(pairs),
                                        task_index)
        return combined

    def _record_cpu_task_trace(self, rec: obs.TraceRecorder,
                               timing: CpuTaskTiming, split_bytes: int,
                               map_pairs: int,
                               task_index: int | None = None) -> None:
        """One CPU task span tiled by its Fig. 6-style phase children.

        ``task_index`` defaults to this process's running task count;
        pool workers pass the job-wide index so spliced traces number
        tasks as the serial run would.
        """
        pid, tid = "cpu-streaming", "tasks"
        index = task_index if task_index is not None \
            else int(rec.metrics.count("cpu.tasks"))
        task = rec.begin(
            f"cpu-task#{index} {self.app.name}", "cpu-task", pid, tid,
            args={"split_bytes": split_bytes, "map_pairs": map_pairs},
        )
        phases = {
            "input_read": timing.input_read,
            "map": timing.map,
            "sort": timing.sort,
            "combine": timing.combine,
            "output_write": timing.output_write,
        }
        for phase, seconds in phases.items():
            rec.complete(phase, "phase", pid, tid, seconds)
        rec.end(task)
        rec.inc("cpu.tasks")
        rec.inc("cpu.map_pairs", map_pairs)

    # -- reduce side ---------------------------------------------------------------

    def reduce_partition(self, partition: int,
                         runs: list[list]) -> tuple[list, ReduceTaskTiming]:
        """Run one reduce task: k-way merge of the partition's sorted
        runs, then the reduce function — preferably the app's mini-C
        Streaming reducer (reducers always run on CPUs, paper §3.1),
        else the Python one. Returns the reduced pairs plus the task's
        deterministic simulated timing.

        Pure with respect to the job: pool workers call this through
        :mod:`repro.parallel.reducetask` and the driver folds the
        returned pairs in partition order, so serial and pooled reduce
        phases are byte-identical.
        """
        merged = merge_sorted_runs(runs)
        input_pairs = len(merged)
        input_bytes = sum(utf8_len(t[2]) for t in merged)
        if self.app.reduce_source is not None:
            text_in = "".join(t[2] for t in merged)
            out_text, _counters = self.app.cpu_reduce(text_in)
            reduced = [parse_kv_line(ln)
                       for ln in out_text.splitlines() if ln]
            output_bytes = utf8_len(out_text)
        else:
            grouped: dict[Any, list[Any]] = defaultdict(list)
            for k, v, _ln in merged:
                grouped[k].append(v)
            reduced = [
                pair
                for key, values in grouped.items()
                for pair in self.app.reduce(key, values)
            ]
            output_bytes = sum(utf8_len(kv_line(k, v)) for k, v in reduced)
        timing = reduce_task_timing(
            partition=partition,
            merge_runs=len(runs),
            input_pairs=input_pairs,
            input_bytes=input_bytes,
            output_pairs=len(reduced),
            output_bytes=output_bytes,
            io=self.io,
            replication=self.cluster.hdfs_replication,
        )
        return reduced, timing

    def _fold_reduced(self, output: dict[Any, Any], partition: int,
                      reduced: list) -> None:
        """Fold one partition's reduce output into the job output dict
        — always in the driver, always in partition order, so the
        insertion order and the duplicate-key check are identical under
        serial and pooled reduce phases."""
        for out_k, out_v in reduced:
            if out_k in output:
                raise HadoopError(
                    f"{self.app.name} reducer emitted duplicate key "
                    f"{out_k!r} in partition {partition}"
                )
            output[out_k] = out_v

    # -- full job --------------------------------------------------------------------

    def run(self, input_text: str) -> LocalJobResult:
        result = LocalJobResult()
        data = input_text.encode("utf-8")
        ranges = self.split_ranges(data)
        result.map_tasks = len(ranges)
        nworkers = resolve_workers(self.workers, tasks=len(ranges))
        result.workers = nworkers

        rec = obs.active()
        job_span = None
        if rec.enabled:
            span_args = {
                "cluster": self.cluster.name,
                "path": "gpu" if self.use_gpu else "cpu",
                "map_tasks": len(ranges),
                "reducers": self.num_reducers,
            }
            if nworkers > 1:  # serial spans stay byte-identical
                span_args["workers"] = nworkers
            job_span = rec.begin(
                f"job {self.app.name}", "job", "local-job", "driver",
                args=span_args,
            )

        # Map phase → shuffle inputs grouped by reduce partition, kept
        # as per-task *runs* (streaming-sorted by the map task, with
        # one-time renderings and sort keys — see the map task helpers)
        # so the reduce side can k-way merge instead of re-sorting.
        shuffle: dict[int, list[list]] = defaultdict(list)
        if nworkers > 1:
            parts_per_task = self._run_map_phase_parallel(
                data, ranges, nworkers, result, rec
            )
        else:
            device = GpuDevice(self.cluster.gpu) if self.use_gpu else None
            gpu_runner = self._make_gpu_runner(device) if self.use_gpu \
                else None
            parts_per_task = (
                self._run_gpu_map_task(data[a:b], gpu_runner, result)
                if self.use_gpu
                else self._run_cpu_map_task(data[a:b], result)
                for a, b in ranges
            )
        for parts in parts_per_task:
            for part, run in parts.items():
                shuffle[part].append(run)
                result.shuffle_bytes += sum(utf8_len(e[1][2]) for e in run)

        # Reduce phase: one reduce task per partition, serial in the
        # driver or fanned across the daemon pool; either way the
        # reduced pairs fold into the output dict in partition order.
        reduce_parts = sorted(shuffle)
        reduce_workers = resolve_reduce_workers(
            self.workers, tasks=len(reduce_parts)
        )
        result.reduce_workers = reduce_workers
        # Map-only jobs (num_reducers == 0) write output at the map
        # tasks; their identity fold through this phase is free, like
        # estimate_reduce_phase's zero-cost map-only answer.
        charge_reduce = self.num_reducers > 0
        output: dict[Any, Any] = {}
        if reduce_workers > 1:
            reduced_per_part = self._run_reduce_phase_parallel(
                reduce_parts, shuffle, reduce_workers, result, rec,
                charge_reduce,
            )
            for part, reduced in zip(reduce_parts, reduced_per_part):
                self._fold_reduced(output, part, reduced)
        else:
            for part in reduce_parts:
                reduced, timing = self.reduce_partition(part, shuffle[part])
                if charge_reduce:
                    result.reduce_task_timings.append(timing)
                self._fold_reduced(output, part, reduced)
        result.output = output

        if rec.enabled and job_span is not None:
            # The job span covers the map phase's wall-clock-equivalent
            # duration: with one worker that is the task-seconds sum
            # (bit-identical to the pre-parallel behaviour); with N it
            # is the overlapped critical path. A pooled reduce phase
            # extends the span by its own critical path (serial reduce
            # keeps the historical span end, byte for byte).
            map_end = job_span.ts + result.map_critical_path_seconds
            rec.counter(
                "shuffle", "local-job",
                {"bytes": result.shuffle_bytes,
                 "pairs": result.map_output_pairs},
                ts=map_end,
            )
            rec.inc("shuffle.bytes", result.shuffle_bytes)
            rec.inc("job.map_output_pairs", result.map_output_pairs)
            rec.inc("jobs")
            end_ts = map_end
            end_args = {"output_keys": len(output),
                        "shuffle_bytes": result.shuffle_bytes}
            if reduce_workers > 1:  # serial spans stay byte-identical
                end_ts = map_end + result.reduce_critical_path_seconds
                end_args["reduce_workers"] = reduce_workers
                end_args["reduce_tasks"] = len(reduce_parts)
            rec.end(job_span, ts=end_ts, args=end_args)
        return result

    def _run_map_phase_parallel(self, data: bytes,
                                ranges: list[tuple[int, int]],
                                nworkers: int, result: LocalJobResult,
                                rec: Any) -> list[dict]:
        """Fan the map phase across the daemon pool and fold the
        envelopes exactly as the serial loop would have.

        Envelopes arrive in task-index order (the pool reassembles its
        batches that way), so every accumulation below — task-result
        lists, pair counts, float timing sums, shuffle extension order —
        replays the serial fold and the job result is byte-identical to
        ``workers=1``.
        """
        from ..parallel.maptask import run_map_tasks

        envelopes = run_map_tasks(self, data, ranges, nworkers)
        parts_per_task: list[dict] = []
        for envelope in envelopes:
            if envelope.gpu_result is not None:
                task = envelope.gpu_result
                result.gpu_task_results.append(task)
                result.map_output_pairs += task.emitted_pairs
            else:
                assert envelope.cpu_timing is not None
                result.cpu_task_timings.append(envelope.cpu_timing)
                result.map_output_pairs += envelope.map_pairs
            # Both paths ship ready-to-merge rendered runs: the worker
            # already sorted, decorated, and encoded every pair (the
            # driver used to re-encode the GPU path's pairs here).
            parts_per_task.append(envelope.parts or {})
            if rec.enabled and envelope.events is not None:
                rec.splice(envelope.events,
                           pid_suffix=f"@w{envelope.worker_pid}")
                if envelope.metrics is not None:
                    rec.metrics.merge(envelope.metrics)
        return parts_per_task

    def _run_reduce_phase_parallel(self, parts: list[int],
                                   shuffle: dict[int, list[list]],
                                   nworkers: int, result: LocalJobResult,
                                   rec: Any, charge_reduce: bool) -> list[list]:
        """Fan the reduce phase across the daemon pool.

        Envelopes arrive in partition order (the pool reassembles by
        submission index), so timing accumulation and the driver-side
        output fold replay the serial loop exactly — reduce tasks are
        pure, and the duplicate-key check still fires in the driver at
        the same fold step it would serially.
        """
        from ..parallel.reducetask import run_reduce_tasks

        envelopes = run_reduce_tasks(self, parts, shuffle, nworkers)
        reduced_per_part: list[list] = []
        for envelope in envelopes:
            if charge_reduce:
                result.reduce_task_timings.append(envelope.timing)
            reduced_per_part.append(envelope.reduced)
            if rec.enabled and envelope.events is not None:
                rec.splice(envelope.events,
                           pid_suffix=f"@w{envelope.worker_pid}")
                if envelope.metrics is not None:
                    rec.metrics.merge(envelope.metrics)
        return reduced_per_part
