"""Functional single-process job runner (Hadoop's LocalJobRunner).

Executes a complete MapReduce job over real bytes: input splitting,
map tasks on the CPU path (Hadoop Streaming filters) or the GPU path
(translated kernels on the simulated device), hash partitioning, the
shuffle, per-reducer merge sort, and the reduce function. This is the
correctness backbone: CPU output, GPU output, and the app's pure-Python
reference must all agree after reduce — including under the combiner's
§4.2 relaxation.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any

from ..apps.base import Application
from ..config import CLUSTER1, ClusterConfig, OptimizationFlags
from ..costmodel.cpu import CpuTaskModel, CpuTaskTiming
from ..costmodel.io import IoModel
from ..errors import HadoopError
from ..gpu.device import GpuDevice
from ..kvstore import Partitioner
from ..kvstore.coerce import kv_line, parse_kv_line, utf8_len
from ..obs import trace as obs
from ..parallel.pool import list_schedule_makespan, resolve_workers
from ..runtime.gpu_task import GpuTaskResult, GpuTaskRunner
from .shuffle import sort_kv_run, streaming_sort_key

__all__ = ["LocalJobResult", "LocalJobRunner", "parse_kv_line"]

# Backwards-compatible alias; the shared definition (and the
# decorate-sort that avoids calling it O(n log n) times) lives in
# hadoop.shuffle.
_sort_key = streaming_sort_key


@dataclass
class LocalJobResult:
    """Functional + timing outcome of one local job."""

    output: dict[Any, Any] = field(default_factory=dict)
    map_tasks: int = 0
    gpu_task_results: list[GpuTaskResult] = field(default_factory=list)
    cpu_task_timings: list[CpuTaskTiming] = field(default_factory=list)
    map_output_pairs: int = 0
    shuffle_bytes: int = 0
    #: Worker processes the map phase ran on (1 = serial).
    workers: int = 1

    def task_seconds(self) -> list[float]:
        """Per-map-task simulated seconds, in task-index order."""
        return [r.seconds for r in self.gpu_task_results] + [
            t.total for t in self.cpu_task_timings
        ]

    @property
    def total_map_seconds(self) -> float:
        """Summed per-task map seconds (total device/core *work*).

        This is the Fig. 6-style resource-consumption figure and is
        independent of ``workers`` — N tasks cost the same work whether
        they overlapped or not. For the wall-clock-equivalent duration
        of the map phase, use :attr:`map_critical_path_seconds`.
        """
        return sum(r.seconds for r in self.gpu_task_results) + sum(
            t.total for t in self.cpu_task_timings
        )

    def critical_path_seconds(self, workers: int) -> float:
        """Map-phase makespan if tasks ran on ``workers`` slots (greedy
        in-order list schedule, the pool's own dispatch order)."""
        return list_schedule_makespan(self.task_seconds(), workers)

    @property
    def map_critical_path_seconds(self) -> float:
        """Wall-clock-equivalent map-phase seconds at this run's
        ``workers`` (equals :attr:`total_map_seconds` when serial)."""
        return self.critical_path_seconds(self.workers)


class LocalJobRunner:
    """Run a full job for one application in-process.

    Parameters
    ----------
    app:
        The benchmark application.
    cluster:
        Supplies the GPU spec, IO rates, and replication factor.
    use_gpu:
        True → map tasks run through the translated kernels on the
        simulated device; False → plain Hadoop Streaming on the CPU path.
    split_bytes:
        fileSplit size for input splitting (tests use small splits; the
        real 256 MB default would make functional runs needlessly slow).
    gpu_engine:
        GPU lane engine name (``"compiled"``/``"tree"``/``"vector"``),
        or None for the process default.
    workers:
        Worker processes for the map phase. None defers to the
        ``REPRO_WORKERS`` environment variable (default 1 = serial); 0
        means one worker per CPU core. Parallel runs produce
        byte-identical output, counters, and simulated seconds — see
        :mod:`repro.parallel`.
    """

    def __init__(
        self,
        app: Application,
        cluster: ClusterConfig = CLUSTER1,
        use_gpu: bool = True,
        opt: OptimizationFlags | None = None,
        num_reducers: int | None = None,
        split_bytes: int = 64 * 1024,
        gpu_engine: str | None = None,
        workers: int | None = None,
    ):
        self.app = app
        self.cluster = cluster
        self.use_gpu = use_gpu
        self.opt = opt if opt is not None else OptimizationFlags.all_on()
        figures = app.cluster1 if cluster.name == "Cluster1" else app.cluster2
        default_reducers = figures.reduce_tasks if figures else 1
        self.num_reducers = (
            num_reducers if num_reducers is not None else default_reducers
        )
        self.split_bytes = split_bytes
        self.gpu_engine = gpu_engine
        self.workers = workers
        self.io = IoModel.for_cluster(cluster)
        self.partitioner = Partitioner(max(self.num_reducers, 1))
        if not use_gpu:
            # Resolved once per job, not per task: the CPU cost model only
            # needs the translated key length (translate_map is memoized,
            # but CPU-only runs shouldn't touch the translator per split).
            self._cpu_key_length = (
                app.translate_map().map_kernel.key_length
                if app.map_source else 16
            )

    # -- input splitting ---------------------------------------------------------

    def split_ranges(self, data: bytes) -> list[tuple[int, int]]:
        """Split boundaries as ``(start, stop)`` byte ranges at
        ~split_bytes, never inside a record (LineRecordReader's
        behaviour). Ranges — not copies — are what the parallel path
        ships to workers; the serial loop slices them locally."""
        ranges: list[tuple[int, int]] = []
        start = 0
        while start < len(data):
            end = min(start + self.split_bytes, len(data))
            if end < len(data):
                nl = data.find(b"\n", end)
                end = len(data) if nl == -1 else nl + 1
            ranges.append((start, end))
            start = end
        return ranges or [(0, 0)]

    def make_splits(self, input_text: str) -> list[bytes]:
        """The split ranges materialized as byte strings."""
        data = input_text.encode("utf-8")
        return [data[a:b] for a, b in self.split_ranges(data)]

    # -- map side ------------------------------------------------------------------

    def _make_gpu_runner(self, device: GpuDevice) -> GpuTaskRunner:
        """One GpuTaskRunner per job: translations are resolved once
        (memoized — see translate_cached) and the host snapshots the
        runner computes are reused by every map task."""
        return GpuTaskRunner(
            self.app.translate_map(self.opt),
            self.app.translate_combine(self.opt),
            device,
            self.io,
            num_reducers=self.num_reducers,
            replication=self.cluster.hdfs_replication,
            min_gpu_mem=self.app.min_gpu_mem,
            engine=self.gpu_engine,
        )

    # Map tasks return partition → [(key, value, line)] triples: ``line``
    # is the pair's streaming rendering (kv_line), encoded exactly once
    # per pair and reused for shuffle/output byte accounting and as
    # reducer stdin.

    def _run_gpu_map_task(
        self, split: bytes, runner: GpuTaskRunner, result: LocalJobResult
    ) -> dict[int, list[tuple[Any, Any, str]]]:
        task = runner.run(split)
        result.gpu_task_results.append(task)
        result.map_output_pairs += task.emitted_pairs
        return {
            part: [(k, v, kv_line(k, v)) for k, v in kvs]
            for part, kvs in task.partition_output.items()
        }

    def _run_cpu_map_task(
        self, split: bytes, result: LocalJobResult,
        task_index: int | None = None,
    ) -> dict[int, list[tuple[Any, Any, str]]]:
        text = split.decode("utf-8", errors="replace")
        map_out, map_counters = self.app.cpu_map(text)
        pairs = [parse_kv_line(ln) for ln in map_out.splitlines() if ln]
        result.map_output_pairs += len(pairs)

        # Partition, sort each partition, then run the combiner filter.
        parts: dict[int, list[tuple[Any, Any]]] = defaultdict(list)
        for k, v in pairs:
            parts[self.partitioner.partition(k)].append((k, v))
        combined: dict[int, list[tuple[Any, Any, str]]] = {}
        combine_counters = None
        output_bytes = 0
        for part, kvs in parts.items():
            kvs = sort_kv_run(kvs)
            if self.app.has_combiner:
                text_in = "".join(kv_line(k, v) for k, v in kvs)
                out, counters = self.app.cpu_combine(text_in)
                combine_counters = counters if combine_counters is None \
                    else combine_counters.merged(counters)
                triples = []
                for ln in out.splitlines():
                    if not ln:
                        continue
                    k, v = parse_kv_line(ln)
                    triples.append((k, v, kv_line(k, v)))
                combined[part] = triples
            else:
                combined[part] = [(k, v, kv_line(k, v)) for k, v in kvs]
            output_bytes += sum(utf8_len(t[2]) for t in combined[part])

        model = CpuTaskModel(self.cluster.cpu, self.io)
        timing = model.task_timing(
            split_bytes=len(split),
            map_counters=map_counters,
            map_kv_pairs=len(pairs),
            key_length=self._cpu_key_length,
            combine_counters=combine_counters,
            output_bytes=output_bytes,
            map_only=self.app.map_only,
            replication=self.cluster.hdfs_replication,
        )
        result.cpu_task_timings.append(timing)

        rec = obs.active()
        if rec.enabled:
            self._record_cpu_task_trace(rec, timing, len(split), len(pairs),
                                        task_index)
        return combined

    def _record_cpu_task_trace(self, rec: obs.TraceRecorder,
                               timing: CpuTaskTiming, split_bytes: int,
                               map_pairs: int,
                               task_index: int | None = None) -> None:
        """One CPU task span tiled by its Fig. 6-style phase children.

        ``task_index`` defaults to this process's running task count;
        pool workers pass the job-wide index so spliced traces number
        tasks as the serial run would.
        """
        pid, tid = "cpu-streaming", "tasks"
        index = task_index if task_index is not None \
            else int(rec.metrics.count("cpu.tasks"))
        task = rec.begin(
            f"cpu-task#{index} {self.app.name}", "cpu-task", pid, tid,
            args={"split_bytes": split_bytes, "map_pairs": map_pairs},
        )
        phases = {
            "input_read": timing.input_read,
            "map": timing.map,
            "sort": timing.sort,
            "combine": timing.combine,
            "output_write": timing.output_write,
        }
        for phase, seconds in phases.items():
            rec.complete(phase, "phase", pid, tid, seconds)
        rec.end(task)
        rec.inc("cpu.tasks")
        rec.inc("cpu.map_pairs", map_pairs)

    # -- full job --------------------------------------------------------------------

    def run(self, input_text: str) -> LocalJobResult:
        result = LocalJobResult()
        data = input_text.encode("utf-8")
        ranges = self.split_ranges(data)
        result.map_tasks = len(ranges)
        nworkers = resolve_workers(self.workers, tasks=len(ranges))
        result.workers = nworkers

        rec = obs.active()
        job_span = None
        if rec.enabled:
            span_args = {
                "cluster": self.cluster.name,
                "path": "gpu" if self.use_gpu else "cpu",
                "map_tasks": len(ranges),
                "reducers": self.num_reducers,
            }
            if nworkers > 1:  # serial spans stay byte-identical
                span_args["workers"] = nworkers
            job_span = rec.begin(
                f"job {self.app.name}", "job", "local-job", "driver",
                args=span_args,
            )

        # Map phase → shuffle inputs grouped by reduce partition. Each
        # entry carries its one-time streaming rendering (see the map
        # task helpers), reused below instead of re-encoding.
        shuffle: dict[int, list[tuple[Any, Any, str]]] = defaultdict(list)
        if nworkers > 1:
            parts_per_task = self._run_map_phase_parallel(
                data, ranges, nworkers, result, rec
            )
        else:
            device = GpuDevice(self.cluster.gpu) if self.use_gpu else None
            gpu_runner = self._make_gpu_runner(device) if self.use_gpu \
                else None
            parts_per_task = (
                self._run_gpu_map_task(data[a:b], gpu_runner, result)
                if self.use_gpu
                else self._run_cpu_map_task(data[a:b], result)
                for a, b in ranges
            )
        for parts in parts_per_task:
            for part, kvs in parts.items():
                shuffle[part].extend(kvs)
                result.shuffle_bytes += sum(utf8_len(t[2]) for t in kvs)

        # Reduce phase: merge-sort each partition, then apply the reduce
        # function — preferably the app's mini-C Streaming reducer
        # (reducers always run on CPUs, paper §3.1), else the Python one.
        output: dict[Any, Any] = {}
        use_minic = self.app.reduce_source is not None
        for part in sorted(shuffle):
            kvs = sort_kv_run(shuffle[part])
            if use_minic:
                text_in = "".join(t[2] for t in kvs)
                out_text, _counters = self.app.cpu_reduce(text_in)
                reduced = [parse_kv_line(ln) for ln in out_text.splitlines() if ln]
            else:
                grouped: dict[Any, list[Any]] = defaultdict(list)
                for k, v, _ln in kvs:
                    grouped[k].append(v)
                reduced = [
                    pair
                    for key, values in grouped.items()
                    for pair in self.app.reduce(key, values)
                ]
            for out_k, out_v in reduced:
                if out_k in output:
                    raise HadoopError(f"reducer emitted duplicate key {out_k!r}")
                output[out_k] = out_v
        result.output = output

        if rec.enabled and job_span is not None:
            # The job span covers the map phase's wall-clock-equivalent
            # duration: with one worker that is the task-seconds sum
            # (bit-identical to the pre-parallel behaviour); with N it
            # is the overlapped critical path.
            map_end = job_span.ts + result.map_critical_path_seconds
            rec.counter(
                "shuffle", "local-job",
                {"bytes": result.shuffle_bytes,
                 "pairs": result.map_output_pairs},
                ts=map_end,
            )
            rec.inc("shuffle.bytes", result.shuffle_bytes)
            rec.inc("job.map_output_pairs", result.map_output_pairs)
            rec.inc("jobs")
            rec.end(
                job_span,
                ts=map_end,
                args={"output_keys": len(output),
                      "shuffle_bytes": result.shuffle_bytes},
            )
        return result

    def _run_map_phase_parallel(self, data: bytes,
                                ranges: list[tuple[int, int]],
                                nworkers: int, result: LocalJobResult,
                                rec: Any) -> list[dict]:
        """Fan the map phase across the daemon pool and fold the
        envelopes exactly as the serial loop would have.

        Envelopes arrive in task-index order (the pool reassembles its
        batches that way), so every accumulation below — task-result
        lists, pair counts, float timing sums, shuffle extension order —
        replays the serial fold and the job result is byte-identical to
        ``workers=1``.
        """
        from ..parallel.maptask import run_map_tasks

        envelopes = run_map_tasks(self, data, ranges, nworkers)
        parts_per_task: list[dict] = []
        for envelope in envelopes:
            if envelope.gpu_result is not None:
                task = envelope.gpu_result
                result.gpu_task_results.append(task)
                result.map_output_pairs += task.emitted_pairs
                parts = {
                    part: [(k, v, kv_line(k, v)) for k, v in kvs]
                    for part, kvs in task.partition_output.items()
                }
            else:
                assert envelope.cpu_timing is not None
                result.cpu_task_timings.append(envelope.cpu_timing)
                result.map_output_pairs += envelope.map_pairs
                parts = envelope.parts or {}
            parts_per_task.append(parts)
            if rec.enabled and envelope.events is not None:
                rec.splice(envelope.events,
                           pid_suffix=f"@w{envelope.worker_pid}")
                if envelope.metrics is not None:
                    rec.metrics.merge(envelope.metrics)
        return parts_per_task
