"""Functional single-process job runner (Hadoop's LocalJobRunner).

Executes a complete MapReduce job over real bytes: input splitting,
map tasks on the CPU path (Hadoop Streaming filters) or the GPU path
(translated kernels on the simulated device), hash partitioning, the
shuffle, per-reducer merge sort, and the reduce function. This is the
correctness backbone: CPU output, GPU output, and the app's pure-Python
reference must all agree after reduce — including under the combiner's
§4.2 relaxation.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any

from ..apps.base import Application
from ..config import CLUSTER1, ClusterConfig, OptimizationFlags
from ..costmodel.cpu import CpuTaskModel, CpuTaskTiming
from ..costmodel.io import IoModel
from ..errors import HadoopError
from ..gpu.device import GpuDevice
from ..kvstore import Partitioner
from ..kvstore.coerce import kv_line, parse_kv_line, utf8_len
from ..obs import trace as obs
from ..runtime.gpu_task import GpuTaskResult, GpuTaskRunner

__all__ = ["LocalJobResult", "LocalJobRunner", "parse_kv_line"]


def _sort_key(key: Any) -> tuple[int, Any]:
    if isinstance(key, (int, float)):
        return (0, float(key))
    return (1, str(key))


@dataclass
class LocalJobResult:
    """Functional + timing outcome of one local job."""

    output: dict[Any, Any] = field(default_factory=dict)
    map_tasks: int = 0
    gpu_task_results: list[GpuTaskResult] = field(default_factory=list)
    cpu_task_timings: list[CpuTaskTiming] = field(default_factory=list)
    map_output_pairs: int = 0
    shuffle_bytes: int = 0

    @property
    def total_map_seconds(self) -> float:
        return sum(r.seconds for r in self.gpu_task_results) + sum(
            t.total for t in self.cpu_task_timings
        )


class LocalJobRunner:
    """Run a full job for one application in-process.

    Parameters
    ----------
    app:
        The benchmark application.
    cluster:
        Supplies the GPU spec, IO rates, and replication factor.
    use_gpu:
        True → map tasks run through the translated kernels on the
        simulated device; False → plain Hadoop Streaming on the CPU path.
    split_bytes:
        fileSplit size for input splitting (tests use small splits; the
        real 256 MB default would make functional runs needlessly slow).
    gpu_engine:
        GPU lane engine name (``"compiled"``/``"tree"``), or None for
        the process default.
    """

    def __init__(
        self,
        app: Application,
        cluster: ClusterConfig = CLUSTER1,
        use_gpu: bool = True,
        opt: OptimizationFlags | None = None,
        num_reducers: int | None = None,
        split_bytes: int = 64 * 1024,
        gpu_engine: str | None = None,
    ):
        self.app = app
        self.cluster = cluster
        self.use_gpu = use_gpu
        self.opt = opt if opt is not None else OptimizationFlags.all_on()
        figures = app.cluster1 if cluster.name == "Cluster1" else app.cluster2
        default_reducers = figures.reduce_tasks if figures else 1
        self.num_reducers = (
            num_reducers if num_reducers is not None else default_reducers
        )
        self.split_bytes = split_bytes
        self.gpu_engine = gpu_engine
        self.io = IoModel.for_cluster(cluster)
        self.partitioner = Partitioner(max(self.num_reducers, 1))
        if not use_gpu:
            # Resolved once per job, not per task: the CPU cost model only
            # needs the translated key length (translate_map is memoized,
            # but CPU-only runs shouldn't touch the translator per split).
            self._cpu_key_length = (
                app.translate_map().map_kernel.key_length
                if app.map_source else 16
            )

    # -- input splitting ---------------------------------------------------------

    def make_splits(self, input_text: str) -> list[bytes]:
        """Split on record boundaries at ~split_bytes (LineRecordReader's
        behaviour of never splitting a record)."""
        data = input_text.encode("utf-8")
        splits: list[bytes] = []
        start = 0
        while start < len(data):
            end = min(start + self.split_bytes, len(data))
            if end < len(data):
                nl = data.find(b"\n", end)
                end = len(data) if nl == -1 else nl + 1
            splits.append(data[start:end])
            start = end
        return splits or [b""]

    # -- map side ------------------------------------------------------------------

    def _make_gpu_runner(self, device: GpuDevice) -> GpuTaskRunner:
        """One GpuTaskRunner per job: translations are resolved once
        (memoized — see translate_cached) and the host snapshots the
        runner computes are reused by every map task."""
        return GpuTaskRunner(
            self.app.translate_map(self.opt),
            self.app.translate_combine(self.opt),
            device,
            self.io,
            num_reducers=self.num_reducers,
            replication=self.cluster.hdfs_replication,
            min_gpu_mem=self.app.min_gpu_mem,
            engine=self.gpu_engine,
        )

    # Map tasks return partition → [(key, value, line)] triples: ``line``
    # is the pair's streaming rendering (kv_line), encoded exactly once
    # per pair and reused for shuffle/output byte accounting and as
    # reducer stdin.

    def _run_gpu_map_task(
        self, split: bytes, runner: GpuTaskRunner, result: LocalJobResult
    ) -> dict[int, list[tuple[Any, Any, str]]]:
        task = runner.run(split)
        result.gpu_task_results.append(task)
        result.map_output_pairs += task.emitted_pairs
        return {
            part: [(k, v, kv_line(k, v)) for k, v in kvs]
            for part, kvs in task.partition_output.items()
        }

    def _run_cpu_map_task(
        self, split: bytes, result: LocalJobResult
    ) -> dict[int, list[tuple[Any, Any, str]]]:
        text = split.decode("utf-8", errors="replace")
        map_out, map_counters = self.app.cpu_map(text)
        pairs = [parse_kv_line(ln) for ln in map_out.splitlines() if ln]
        result.map_output_pairs += len(pairs)

        # Partition, sort each partition, then run the combiner filter.
        parts: dict[int, list[tuple[Any, Any]]] = defaultdict(list)
        for k, v in pairs:
            parts[self.partitioner.partition(k)].append((k, v))
        combined: dict[int, list[tuple[Any, Any, str]]] = {}
        combine_counters = None
        output_bytes = 0
        for part, kvs in parts.items():
            kvs.sort(key=lambda kv: _sort_key(kv[0]))
            if self.app.has_combiner:
                text_in = "".join(kv_line(k, v) for k, v in kvs)
                out, counters = self.app.cpu_combine(text_in)
                combine_counters = counters if combine_counters is None \
                    else combine_counters.merged(counters)
                triples = []
                for ln in out.splitlines():
                    if not ln:
                        continue
                    k, v = parse_kv_line(ln)
                    triples.append((k, v, kv_line(k, v)))
                combined[part] = triples
            else:
                combined[part] = [(k, v, kv_line(k, v)) for k, v in kvs]
            output_bytes += sum(utf8_len(t[2]) for t in combined[part])

        model = CpuTaskModel(self.cluster.cpu, self.io)
        timing = model.task_timing(
            split_bytes=len(split),
            map_counters=map_counters,
            map_kv_pairs=len(pairs),
            key_length=self._cpu_key_length,
            combine_counters=combine_counters,
            output_bytes=output_bytes,
            map_only=self.app.map_only,
            replication=self.cluster.hdfs_replication,
        )
        result.cpu_task_timings.append(timing)

        rec = obs.active()
        if rec.enabled:
            self._record_cpu_task_trace(rec, timing, len(split), len(pairs))
        return combined

    def _record_cpu_task_trace(self, rec: obs.TraceRecorder,
                               timing: CpuTaskTiming, split_bytes: int,
                               map_pairs: int) -> None:
        """One CPU task span tiled by its Fig. 6-style phase children."""
        pid, tid = "cpu-streaming", "tasks"
        index = int(rec.metrics.count("cpu.tasks"))
        task = rec.begin(
            f"cpu-task#{index} {self.app.name}", "cpu-task", pid, tid,
            args={"split_bytes": split_bytes, "map_pairs": map_pairs},
        )
        phases = {
            "input_read": timing.input_read,
            "map": timing.map,
            "sort": timing.sort,
            "combine": timing.combine,
            "output_write": timing.output_write,
        }
        for phase, seconds in phases.items():
            rec.complete(phase, "phase", pid, tid, seconds)
        rec.end(task)
        rec.inc("cpu.tasks")
        rec.inc("cpu.map_pairs", map_pairs)

    # -- full job --------------------------------------------------------------------

    def run(self, input_text: str) -> LocalJobResult:
        result = LocalJobResult()
        splits = self.make_splits(input_text)
        result.map_tasks = len(splits)
        device = GpuDevice(self.cluster.gpu) if self.use_gpu else None
        gpu_runner = self._make_gpu_runner(device) if self.use_gpu else None

        rec = obs.active()
        job_span = None
        if rec.enabled:
            job_span = rec.begin(
                f"job {self.app.name}", "job", "local-job", "driver",
                args={
                    "cluster": self.cluster.name,
                    "path": "gpu" if self.use_gpu else "cpu",
                    "map_tasks": len(splits),
                    "reducers": self.num_reducers,
                },
            )

        # Map phase → shuffle inputs grouped by reduce partition. Each
        # entry carries its one-time streaming rendering (see the map
        # task helpers), reused below instead of re-encoding.
        shuffle: dict[int, list[tuple[Any, Any, str]]] = defaultdict(list)
        for split in splits:
            if self.use_gpu:
                parts = self._run_gpu_map_task(split, gpu_runner, result)
            else:
                parts = self._run_cpu_map_task(split, result)
            for part, kvs in parts.items():
                shuffle[part].extend(kvs)
                result.shuffle_bytes += sum(utf8_len(t[2]) for t in kvs)

        # Reduce phase: merge-sort each partition, then apply the reduce
        # function — preferably the app's mini-C Streaming reducer
        # (reducers always run on CPUs, paper §3.1), else the Python one.
        output: dict[Any, Any] = {}
        use_minic = self.app.reduce_source is not None
        for part in sorted(shuffle):
            kvs = sorted(shuffle[part], key=lambda kv: _sort_key(kv[0]))
            if use_minic:
                text_in = "".join(t[2] for t in kvs)
                out_text, _counters = self.app.cpu_reduce(text_in)
                reduced = [parse_kv_line(ln) for ln in out_text.splitlines() if ln]
            else:
                grouped: dict[Any, list[Any]] = defaultdict(list)
                for k, v, _ln in kvs:
                    grouped[k].append(v)
                reduced = [
                    pair
                    for key, values in grouped.items()
                    for pair in self.app.reduce(key, values)
                ]
            for out_k, out_v in reduced:
                if out_k in output:
                    raise HadoopError(f"reducer emitted duplicate key {out_k!r}")
                output[out_k] = out_v
        result.output = output

        if rec.enabled and job_span is not None:
            rec.counter(
                "shuffle", "local-job",
                {"bytes": result.shuffle_bytes,
                 "pairs": result.map_output_pairs},
                ts=job_span.ts + result.total_map_seconds,
            )
            rec.inc("shuffle.bytes", result.shuffle_bytes)
            rec.inc("job.map_output_pairs", result.map_output_pairs)
            rec.inc("jobs")
            rec.end(
                job_span,
                ts=job_span.ts + result.total_map_seconds,
                args={"output_keys": len(output),
                      "shuffle_bytes": result.shuffle_bytes},
            )
        return result
