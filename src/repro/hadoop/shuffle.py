"""Shuffle / sort / reduce phase model (paper §2.2).

The paper's GPU contribution ends at map+combine output; reduce always
runs on CPUs, identically under every scheduler — Table 2's '%Exec. Time
Map+Combine Active' column quantifies how much the common reduce tail
dampens end-to-end speedups. We model the phase analytically:

* shuffle: each reducer fetches its partition from every map output;
  fetches overlap map execution after the slowstart point, so only the
  *last wave* of map outputs remains to move when maps finish;
* sort: the reducer's multi-way merge over its fetched runs;
* reduce + HDFS write: compute plus replicated output write.

Reducers round-robin over nodes and share each node's reduce slots.
"""

from __future__ import annotations

import math
import operator
from dataclasses import dataclass
from typing import Any, Iterable, TypeVar

from ..config import ClusterConfig
from ..costmodel.cpu import STREAMING_OVERHEAD_S_PER_KV
from ..costmodel.io import IoModel
from ..errors import ConfigError
from .job import JobConf

_KV = TypeVar("_KV", bound=tuple)

#: A decorated run entry: the precomputed streaming sort key plus the
#: record it orders. Runs of these are what map tasks ship to the
#: reduce-side merge — the key is computed exactly once per record, on
#: the map side, and reused by :func:`merge_sorted_runs`.
DecoratedEntry = tuple[tuple[int, Any], _KV]


def streaming_sort_key(key: Any) -> tuple[int, Any]:
    """Hadoop Streaming's shuffle ordering for one key.

    Numeric keys sort before text keys, numerically; everything else
    sorts by its string rendering. Shared by the map-side per-partition
    sort, the reduce-side merge, and calibration replays — the three
    must agree or reducers see differently-grouped runs.
    """
    if isinstance(key, (int, float)):
        return (0, float(key))
    return (1, str(key))


def sort_kv_run(items: Iterable[_KV]) -> list[_KV]:
    """Sort a run of KV records (``(key, ...)`` tuples) by streaming key
    order, stably.

    Decorate-sort-undecorate: ``streaming_sort_key`` runs once per
    record (not O(n log n) times), and the enumeration index both breaks
    ties — preserving the stable arrival order ``list.sort(key=...)``
    gave the previous inline lambdas — and keeps the comparison from
    ever reaching the record payload.
    """
    decorated = [(streaming_sort_key(item[0]), i, item)
                 for i, item in enumerate(items)]
    decorated.sort()
    return [item for _key, _i, item in decorated]


def decorate_kv_run(items: Iterable[_KV]) -> list[DecoratedEntry]:
    """Stably sort a run and keep the decoration.

    Same decorate-sort as :func:`sort_kv_run` (the enumeration index
    breaks ties by arrival order and shields the payload from ever
    being compared), but the result *retains* ``(sort_key, record)``
    pairs: a map task sorts its partition run once, and the reduce-side
    merge reuses the keys instead of recomputing them per record.
    """
    decorated = [(streaming_sort_key(item[0]), i, item)
                 for i, item in enumerate(items)]
    decorated.sort()
    return [(key, item) for key, _i, item in decorated]


def merge_sorted_runs(runs: Iterable[list[DecoratedEntry]]) -> list[_KV]:
    """K-way merge of stably-sorted decorated runs, byte-identical to
    ``sort_kv_run`` of the runs' concatenation.

    The identity holds because every run arrives stably sorted
    (:func:`decorate_kv_run`) and the merge is a *stable* sort keyed on
    the precomputed decoration only: records with equal streaming keys
    keep concatenation order — run order first, then each run's
    arrival order — which is exactly the tie-break the full re-sort's
    enumeration index produced. Payloads are never compared.

    Implementation note: this is timsort over the concatenation rather
    than ``heapq.merge``. CPython's sort detects the presorted runs
    and gallops across them, and measured on the high-key-count apps'
    real shuffle data (TS/II/PR/RJ) it beats the heap merge by 2.5-4x
    and the decorate-and-fully-re-sort baseline by 2.6-9.5x; the heap
    merge only managed ~1.0-1.6x on the wide-key apps (TS, RJ).
    """
    merged: list[DecoratedEntry] = []
    for run in runs:
        merged.extend(run)
    merged.sort(key=operator.itemgetter(0))  # stable ⇒ ties keep run order
    return [item for _key, item in merged]


#: Fraction of total map output still unfetched when the last map ends
#: (the final map wave; earlier waves shuffled concurrently with maps).
_LAST_WAVE_FRACTION = 0.15

#: Merge cost per byte per log2(runs) on one core, in seconds.
_MERGE_S_PER_BYTE = 2.0e-9


@dataclass
class ReducePhaseEstimate:
    shuffle_seconds: float
    merge_seconds: float
    reduce_seconds: float
    write_seconds: float

    @property
    def total(self) -> float:
        return (self.shuffle_seconds + self.merge_seconds
                + self.reduce_seconds + self.write_seconds)


def estimate_reduce_phase(job: JobConf, io: IoModel) -> ReducePhaseEstimate:
    """Seconds from the last map completion to job completion."""
    if job.map_only:
        return ReducePhaseEstimate(0.0, 0.0, 0.0, 0.0)
    if job.num_reduce_tasks <= 0:
        raise ConfigError("reduce phase on a map-only job")
    cluster = job.cluster
    total_map_output = job.map_output_bytes * job.num_map_tasks
    per_reducer = total_map_output / job.num_reduce_tasks

    # Reducers run in waves over the cluster's reduce slots.
    reduce_slots = cluster.num_slaves * cluster.max_reduce_slots_per_node
    waves = math.ceil(job.num_reduce_tasks / reduce_slots)

    shuffle = io.shuffle_s(int(per_reducer * _LAST_WAVE_FRACTION))
    merge = per_reducer * _MERGE_S_PER_BYTE * max(
        1.0, math.log2(max(job.num_map_tasks, 2))
    )
    reduce_s = job.reduce_compute_seconds
    write = io.hdfs_write_s(int(per_reducer), cluster.hdfs_replication)
    return ReducePhaseEstimate(
        shuffle_seconds=shuffle * waves,
        merge_seconds=merge * waves,
        reduce_seconds=reduce_s * waves,
        write_seconds=write * waves,
    )


@dataclass(frozen=True)
class ReduceTaskTiming:
    """Simulated seconds for one functional reduce task.

    Computed from byte/pair/run counts only — no wall clock — so a
    pooled reduce task reports the same floats as the serial fold and
    the parallel job result stays byte-identical to ``workers=1``.
    """

    partition: int
    merge_runs: int
    input_pairs: int
    input_bytes: int
    output_pairs: int
    output_bytes: int
    merge: float
    reduce: float
    output_write: float

    @property
    def total(self) -> float:
        return self.merge + self.reduce + self.output_write


def reduce_task_timing(*, partition: int, merge_runs: int, input_pairs: int,
                       input_bytes: int, output_pairs: int, output_bytes: int,
                       io: IoModel, replication: int) -> ReduceTaskTiming:
    """Charge one reduce task: k-way merge over its fetched runs, the
    streaming reduce pass, and the replicated HDFS output write — the
    per-task analogue of :func:`estimate_reduce_phase`'s per-wave model,
    sharing its merge constant."""
    merge = input_bytes * _MERGE_S_PER_BYTE * max(
        1.0, math.log2(max(merge_runs, 2))
    )
    reduce_s = input_pairs * STREAMING_OVERHEAD_S_PER_KV
    write = io.hdfs_write_s(output_bytes, replication)
    return ReduceTaskTiming(
        partition=partition,
        merge_runs=merge_runs,
        input_pairs=input_pairs,
        input_bytes=input_bytes,
        output_pairs=output_pairs,
        output_bytes=output_bytes,
        merge=merge,
        reduce=reduce_s,
        output_write=write,
    )
