"""Shuffle / sort / reduce phase model (paper §2.2).

The paper's GPU contribution ends at map+combine output; reduce always
runs on CPUs, identically under every scheduler — Table 2's '%Exec. Time
Map+Combine Active' column quantifies how much the common reduce tail
dampens end-to-end speedups. We model the phase analytically:

* shuffle: each reducer fetches its partition from every map output;
  fetches overlap map execution after the slowstart point, so only the
  *last wave* of map outputs remains to move when maps finish;
* sort: the reducer's multi-way merge over its fetched runs;
* reduce + HDFS write: compute plus replicated output write.

Reducers round-robin over nodes and share each node's reduce slots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable, TypeVar

from ..config import ClusterConfig
from ..costmodel.io import IoModel
from ..errors import ConfigError
from .job import JobConf

_KV = TypeVar("_KV", bound=tuple)


def streaming_sort_key(key: Any) -> tuple[int, Any]:
    """Hadoop Streaming's shuffle ordering for one key.

    Numeric keys sort before text keys, numerically; everything else
    sorts by its string rendering. Shared by the map-side per-partition
    sort, the reduce-side merge, and calibration replays — the three
    must agree or reducers see differently-grouped runs.
    """
    if isinstance(key, (int, float)):
        return (0, float(key))
    return (1, str(key))


def sort_kv_run(items: Iterable[_KV]) -> list[_KV]:
    """Sort a run of KV records (``(key, ...)`` tuples) by streaming key
    order, stably.

    Decorate-sort-undecorate: ``streaming_sort_key`` runs once per
    record (not O(n log n) times), and the enumeration index both breaks
    ties — preserving the stable arrival order ``list.sort(key=...)``
    gave the previous inline lambdas — and keeps the comparison from
    ever reaching the record payload.
    """
    decorated = [(streaming_sort_key(item[0]), i, item)
                 for i, item in enumerate(items)]
    decorated.sort()
    return [item for _key, _i, item in decorated]

#: Fraction of total map output still unfetched when the last map ends
#: (the final map wave; earlier waves shuffled concurrently with maps).
_LAST_WAVE_FRACTION = 0.15

#: Merge cost per byte per log2(runs) on one core, in seconds.
_MERGE_S_PER_BYTE = 2.0e-9


@dataclass
class ReducePhaseEstimate:
    shuffle_seconds: float
    merge_seconds: float
    reduce_seconds: float
    write_seconds: float

    @property
    def total(self) -> float:
        return (self.shuffle_seconds + self.merge_seconds
                + self.reduce_seconds + self.write_seconds)


def estimate_reduce_phase(job: JobConf, io: IoModel) -> ReducePhaseEstimate:
    """Seconds from the last map completion to job completion."""
    if job.map_only:
        return ReducePhaseEstimate(0.0, 0.0, 0.0, 0.0)
    if job.num_reduce_tasks <= 0:
        raise ConfigError("reduce phase on a map-only job")
    cluster = job.cluster
    total_map_output = job.map_output_bytes * job.num_map_tasks
    per_reducer = total_map_output / job.num_reduce_tasks

    # Reducers run in waves over the cluster's reduce slots.
    reduce_slots = cluster.num_slaves * cluster.max_reduce_slots_per_node
    waves = math.ceil(job.num_reduce_tasks / reduce_slots)

    shuffle = io.shuffle_s(int(per_reducer * _LAST_WAVE_FRACTION))
    merge = per_reducer * _MERGE_S_PER_BYTE * max(
        1.0, math.log2(max(job.num_map_tasks, 2))
    )
    reduce_s = job.reduce_compute_seconds
    write = io.hdfs_write_s(int(per_reducer), cluster.hdfs_replication)
    return ReducePhaseEstimate(
        shuffle_seconds=shuffle * waves,
        merge_seconds=merge * waves,
        reduce_seconds=reduce_s * waves,
        write_seconds=write * waves,
    )
