"""The TaskTracker: slot management and CPU/GPU task placement.

Each slave runs ``max_map_slots`` CPU map slots plus one *reserved* slot
per GPU (paper §5.1: 'TaskTrackers on each slave keep one slot reserved
per GPU. Note that these slots simply offload the tasks on GPUs; no CPU
time is consumed'). Placement between CPU and GPU follows the active
policy; forced-GPU tasks from the tail scheduler queue on the
least-loaded device.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from ..errors import HadoopError
from ..scheduling.tail import SchedulingPolicy
from .heartbeat import Heartbeat
from .tasks import MapTask, NodeStats, SlotKind


@dataclass
class TaskTracker:
    node: int
    cpu_slots: int
    num_gpus: int
    policy: SchedulingPolicy
    stats: NodeStats = field(default_factory=NodeStats)
    running_cpu: int = 0
    busy_gpus: int = 0
    gpu_queue: list[MapTask] = field(default_factory=list)
    maps_remaining_per_node: float = float("inf")

    def __post_init__(self) -> None:
        if self.cpu_slots < 0 or self.num_gpus < 0:
            raise HadoopError("negative slot counts")
        if not self.policy.uses_gpus:
            self.num_gpus = 0

    # -- heartbeat -------------------------------------------------------------

    def make_heartbeat(self) -> Heartbeat:
        # Free GPU capacity nets out tasks already queued behind devices,
        # so the tail-mode JobTracker never builds deep GPU queues.
        free_gpu = max(0, self.num_gpus - self.busy_gpus - len(self.gpu_queue))
        return Heartbeat(
            node=self.node,
            free_cpu_slots=self.cpu_slots - self.running_cpu,
            free_gpu_slots=free_gpu,
            running_tasks=self.running_cpu + self.busy_gpus,
            ave_gpu_speedup=self.stats.ave_speedup,
        )

    # -- placement -------------------------------------------------------------

    def place(self, task: MapTask) -> SlotKind:
        """Decide where an incoming task runs; reserves the slot.

        Returns the slot kind. Forced-GPU placements may queue (the caller
        starts queued tasks as devices free up).
        """
        decision = self.policy.place(
            gpu_free=self.busy_gpus < self.num_gpus,
            cpu_free=self.running_cpu < self.cpu_slots,
            num_gpus=self.num_gpus,
            ave_speedup=self.stats.ave_speedup,
            maps_remaining_per_node=self.maps_remaining_per_node,
        )
        if decision.use_gpu and self.num_gpus > 0:
            task.slot = SlotKind.GPU
            task.forced_gpu = decision.forced
            if self.busy_gpus < self.num_gpus:
                self.busy_gpus += 1
                return SlotKind.GPU
            if decision.forced and self._worth_queueing():
                # 'All slots on a TaskTracker force their tasks on the
                # GPU(s) once the taskTail begins' (§6.2), bounded by the
                # node's own backlog: the queue may only grow while it
                # still drains within about one CPU-task time, which is
                # the profitability condition behind taskTail itself.
                self.gpu_queue.append(task)
                return SlotKind.GPU
            task.forced_gpu = False
            # GPU-first with every device busy falls back to a CPU slot.
        if self.running_cpu >= self.cpu_slots:
            # Tail regime: the JobTracker grants up to numGPUs tasks per
            # heartbeat irrespective of CPU occupancy; with every CPU slot
            # busy the task waits for a device ('queuing might occur on
            # the GPU(s)', §6.2).
            if self.num_gpus > 0:
                task.slot = SlotKind.GPU
                task.forced_gpu = True
                self.gpu_queue.append(task)
                return SlotKind.GPU
            raise HadoopError(
                f"node {self.node} has no free slot for task {task.task_id}"
            )
        task.slot = SlotKind.CPU
        self.running_cpu += 1
        return SlotKind.CPU

    def _worth_queueing(self) -> bool:
        """Queue a forced task behind busy devices only while the node's
        backlog (queued + in-flight, in GPU-task units) still drains within
        one CPU-task time: backlog < numGPUs × aveSpeedup. Past that point
        a CPU slot finishes the task sooner, so forcing would *lengthen*
        the job (§6.1's goal is minimizing job time, not GPU utilization)."""
        backlog = len(self.gpu_queue) + self.busy_gpus
        # Very deep queues (high speedups) amplify cross-node imbalance —
        # committed tasks cannot migrate — so depth is also capped at a
        # small multiple of the device count.
        limit = self.num_gpus * min(self.stats.ave_speedup, 8.0)
        return backlog < limit

    def queued_gpu_task(self) -> MapTask | None:
        """Pop the next forced task waiting for a device, if any."""
        if self.gpu_queue and self.busy_gpus < self.num_gpus:
            self.busy_gpus += 1
            return self.gpu_queue.pop(0)
        return None

    def release_slot(self, slot: SlotKind, seconds: float) -> None:
        """Free a slot and record the attempt's duration (also used for
        speculative attempts, which are not bound to ``task.slot``)."""
        if slot is SlotKind.GPU:
            if self.busy_gpus <= 0:
                raise HadoopError("GPU slot underflow")
            self.busy_gpus -= 1
        else:
            if self.running_cpu <= 0:
                raise HadoopError("CPU slot underflow")
            self.running_cpu -= 1
        self.stats.record(slot, seconds)

    def reserve_cpu_slot(self) -> bool:
        """Claim a CPU slot for a speculative attempt, if one is free."""
        if self.running_cpu < self.cpu_slots:
            self.running_cpu += 1
            return True
        return False

    def task_done(self, task: MapTask, seconds: float) -> None:
        self.release_slot(task.slot, seconds)

    @property
    def waiting_on_gpu(self) -> int:
        return len(self.gpu_queue)
