"""The declarative scenario registry.

One frozen-dataclass declaration per scenario — an app, a seeded datagen
recipe at small/medium/large scale, a cluster shape, and a scheduling
policy — consumed by the sweep runner, the bench harness, the fuzz
oracle, and the conformance tests, so "add a scenario" is one entry here
and every harness picks it up (the SNIPPETS BenchmarkConfig-registry
idiom, and HSTREAM's declare-the-workload-once argument).

Three tables:

* :data:`WORKLOADS` — per-app record counts at the canonical scales.
  These are the single source of truth for every record-count table that
  used to be copy-pasted across bench/calibrate/tests.
* :data:`SHAPES` — named cluster shapes, each a delta over the paper's
  Cluster1/Cluster2 plus an optional heterogeneity profile (a fraction
  of nodes slowed by a factor — the inter-node heterogeneity the paper
  leaves to future work, §9).
* :data:`SCENARIOS` — the scenario list itself.

Everything is import-time validated by :func:`validate_registry`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace as dc_replace

from ..config import CLUSTER1, CLUSTER2, ClusterConfig
from ..errors import ConfigError

SCALES = ("small", "medium", "large")

#: Fig. 4/5 presentation order — increasing GPU speedup — which the
#: paper's figures, tables, and calibration bands all share.
PAPER_APP_ORDER = ("GR", "HS", "WC", "HR", "LR", "KM", "CL", "BS")

#: Registry extensions beyond Table 2.
EXTENDED_APP_ORDER = ("II", "RJ", "TS", "PR")

#: Every app the registry covers, paper order first.
APP_ORDER = PAPER_APP_ORDER + EXTENDED_APP_ORDER


@dataclass(frozen=True, slots=True)
class Workload:
    """Per-app record counts for the canonical datagen scales.

    ``small`` sizes conformance tests and smoke sweeps, ``medium`` the
    interpreter/GPU benches, ``large`` the scaled wall-clock tier;
    ``gpu_medium`` overrides the GPU-path bench where its sweet spot
    differs, and ``calibration`` sizes the single-task measurement split.
    """

    app: str
    small: int
    medium: int
    large: int
    gpu_medium: int | None = None
    calibration: int = 300
    seed: int = 7

    def records(self, scale: str) -> int:
        if scale not in SCALES:
            raise ConfigError(f"unknown scale {scale!r}; known: {SCALES}")
        return getattr(self, scale)

    @property
    def gpu_bench_records(self) -> int:
        return self.gpu_medium if self.gpu_medium is not None else self.medium


@dataclass(frozen=True, slots=True)
class ClusterShape:
    """A named cluster shape: a delta over a base paper cluster plus an
    optional heterogeneity profile.

    ``slow_node_fraction``/``slow_factor`` mark every ``1/fraction``-th
    node's CPUs slower by the factor (a deterministic stride — no RNG —
    so a shape always yields the same speed map). GPUs keep their own
    speed, per :class:`~repro.hadoop.simulate.TaskDurationModel`.
    """

    id: str
    base: str = "cluster1"            # "cluster1" | "cluster2"
    num_slaves: int | None = None
    gpus_per_node: int | None = None
    max_map_slots_per_node: int | None = None
    slow_node_fraction: float = 0.0
    slow_factor: float = 1.0
    description: str = ""

    def cluster(self) -> ClusterConfig:
        if self.base == "cluster1":
            base = CLUSTER1
        elif self.base == "cluster2":
            base = CLUSTER2
        else:
            raise ConfigError(f"shape {self.id}: unknown base {self.base!r}")
        overrides = {
            name: value
            for name, value in (
                ("num_slaves", self.num_slaves),
                ("gpus_per_node", self.gpus_per_node),
                ("max_map_slots_per_node", self.max_map_slots_per_node),
            )
            if value is not None
        }
        return dc_replace(base, **overrides) if overrides else base

    def speed_factors(self) -> dict[int, float] | None:
        """node → CPU slowdown factor, or ``None`` when homogeneous."""
        if self.slow_node_fraction <= 0.0 or self.slow_factor == 1.0:
            return None
        stride = max(1, round(1.0 / self.slow_node_fraction))
        nodes = self.cluster().num_slaves
        return {node: self.slow_factor for node in range(0, nodes, stride)}

    @property
    def total_cpu_slots(self) -> int:
        cluster = self.cluster()
        return cluster.num_slaves * cluster.max_map_slots_per_node


@dataclass(frozen=True, slots=True)
class Scenario:
    """One registry entry: app × shape × default policy × workload shape.

    The simulator side declares its own per-task durations (``cpu`` /
    ``gpu_task_seconds``) and sizes the map pool as ``waves`` full slot
    generations, scaled up by :data:`SCALE_TASK_MULT` at medium/large.
    The functional side draws its input from the app's :data:`WORKLOADS`
    entry at the requested scale with the scenario ``seed``.
    """

    id: str
    app: str
    shape: str
    policy: str
    description: str = ""
    seed: int = 7
    waves: float = 2.0
    reduce_tasks: int = 16
    cpu_task_seconds: float = 60.0
    gpu_task_seconds: float = 10.0

    def map_tasks(self, scale: str) -> int:
        shape = get_shape(self.shape)
        return max(1, int(shape.total_cpu_slots * self.waves
                          * SCALE_TASK_MULT[scale]))


#: Simulator map-pool multiplier per scale (relative to ``small``).
SCALE_TASK_MULT = {"small": 1.0, "medium": 3.0, "large": 8.0}


# -- workloads (record counts preserved from the pre-registry tables) --------

def _workloads(*entries: Workload) -> dict[str, Workload]:
    return {w.app: w for w in entries}


WORKLOADS: dict[str, Workload] = _workloads(
    Workload("GR", small=200, medium=4000, large=100_000, calibration=500),
    Workload("WC", small=200, medium=3000, large=100_000,
             gpu_medium=4000, calibration=400),
    Workload("HS", small=200, medium=4000, large=100_000, calibration=400),
    Workload("HR", small=200, medium=4000, large=100_000, calibration=400),
    Workload("LR", small=100, medium=1500, large=30_000, calibration=300),
    Workload("KM", small=60, medium=300, large=5_000, calibration=250),
    Workload("CL", small=80, medium=400, large=8_000, calibration=300),
    Workload("BS", small=30, medium=1500, large=30_000, calibration=120),
    Workload("II", small=150, medium=3000, large=80_000, calibration=400),
    Workload("RJ", small=200, medium=4000, large=100_000, calibration=400),
    Workload("TS", small=200, medium=4000, large=100_000, calibration=400),
    Workload("PR", small=150, medium=2000, large=50_000, calibration=300),
)


# -- cluster shapes ----------------------------------------------------------

def _shapes(*entries: ClusterShape) -> dict[str, ClusterShape]:
    return {s.id: s for s in entries}


SHAPES: dict[str, ClusterShape] = _shapes(
    ClusterShape("c1", base="cluster1",
                 description="Paper Cluster1: 48 nodes, 20 slots, 1 K40."),
    ClusterShape("c2", base="cluster2",
                 description="Paper Cluster2: 32 nodes, 4 slots, 3 M2090."),
    ClusterShape("mini", base="cluster1", num_slaves=8,
                 max_map_slots_per_node=4,
                 description="Tiny smoke shape for tier-1 sweeps."),
    ClusterShape("mega1k", base="cluster1", num_slaves=1000,
                 max_map_slots_per_node=8,
                 slow_node_fraction=0.25, slow_factor=1.7,
                 description="1000 heterogeneous nodes: every 4th node's "
                             "CPUs are 1.7x slower (older processors)."),
    ClusterShape("mega1k-dense", base="cluster1", num_slaves=1000,
                 max_map_slots_per_node=8, gpus_per_node=2,
                 slow_node_fraction=0.125, slow_factor=2.0,
                 description="1000 nodes, 2 GPUs each, a 2x-slow straggler "
                             "octile — the GPU-rich heterogeneity case."),
)


# -- scenarios ---------------------------------------------------------------

SCENARIOS: tuple[Scenario, ...] = (
    # The paper's eight on their Table 2 clusters.
    Scenario("gr-c1-gpu-first", app="GR", shape="c1", policy="gpu-first",
             reduce_tasks=0, gpu_task_seconds=35.0,
             description="Grep, map-only, modest GPU win (Fig. 5)."),
    Scenario("wc-c1-tail", app="WC", shape="c1", policy="tail",
             reduce_tasks=48, gpu_task_seconds=24.0,
             description="Wordcount under tail scheduling (Fig. 3/4)."),
    Scenario("hs-c1-tail", app="HS", shape="c1", policy="tail",
             reduce_tasks=8, gpu_task_seconds=20.0,
             description="Histmovies, IO-bound histogram."),
    Scenario("hr-c1-tail", app="HR", shape="c1", policy="tail",
             reduce_tasks=8, gpu_task_seconds=20.0,
             description="Histratings, combine-heavy histogram."),
    Scenario("lr-c1-tail", app="LR", shape="c1", policy="tail",
             gpu_task_seconds=15.0,
             description="Linear regression, 90 pairs per record."),
    Scenario("km-c1-tail", app="KM", shape="c1", policy="tail",
             gpu_task_seconds=2.4,
             description="Kmeans, the paper's compute-bound star."),
    Scenario("cl-c2-tail", app="CL", shape="c2", policy="tail",
             gpu_task_seconds=6.0,
             description="Classification on the 3-GPU Cluster2."),
    Scenario("bs-c2-gpu-first", app="BS", shape="c2", policy="gpu-first",
             reduce_tasks=0, gpu_task_seconds=1.7,
             description="BlackScholes, map-only, 36x GPU speedup."),
    # Registry extensions: new apps and the new policies.
    Scenario("ii-c1-locality", app="II", shape="c1", policy="locality",
             reduce_tasks=32, gpu_task_seconds=21.0,
             description="Inverted index under delay scheduling — the "
                         "shuffle-heaviest text app, where remote reads "
                         "hurt most."),
    Scenario("rj-c1-fair-share", app="RJ", shape="c1", policy="fair-share",
             gpu_task_seconds=20.0,
             description="Repartition join with proportional grants."),
    Scenario("ts-mega1k-tail", app="TS", shape="mega1k", policy="tail",
             reduce_tasks=64, gpu_task_seconds=27.0,
             description="Terasort at 1000 heterogeneous nodes: tail "
                         "scheduling vs a sort-dominated profile."),
    Scenario("pr-mega1k-locality", app="PR", shape="mega1k",
             policy="locality", gpu_task_seconds=12.0,
             description="PageRank step at 1000 nodes; locality-aware "
                         "grants tame the scatter traffic."),
    Scenario("wc-mega1k-fair-share", app="WC", shape="mega1k-dense",
             policy="fair-share", reduce_tasks=64, gpu_task_seconds=24.0,
             description="Wordcount on the GPU-dense 1000-node shape with "
                         "fair-share grants."),
    # Smoke scenarios for the tier-1 sweep leg.
    Scenario("wc-mini-tail", app="WC", shape="mini", policy="tail",
             reduce_tasks=4, gpu_task_seconds=24.0,
             description="Smoke: wordcount on the 8-node mini shape."),
    Scenario("ii-mini-locality", app="II", shape="mini", policy="locality",
             reduce_tasks=4, gpu_task_seconds=21.0,
             description="Smoke: inverted index + delay scheduling."),
)

BY_ID: dict[str, Scenario] = {s.id: s for s in SCENARIOS}


# -- lookups -----------------------------------------------------------------

def all_scenarios() -> tuple[Scenario, ...]:
    return SCENARIOS


def get_scenario(scenario_id: str) -> Scenario:
    try:
        return BY_ID[scenario_id]
    except KeyError:
        raise ConfigError(
            f"unknown scenario {scenario_id!r}; known: {sorted(BY_ID)}"
        ) from None


def get_shape(shape_id: str) -> ClusterShape:
    try:
        return SHAPES[shape_id]
    except KeyError:
        raise ConfigError(
            f"unknown shape {shape_id!r}; known: {sorted(SHAPES)}"
        ) from None


def get_workload(app: str) -> Workload:
    try:
        return WORKLOADS[app.upper()]
    except KeyError:
        raise ConfigError(
            f"no workload for app {app!r}; known: {sorted(WORKLOADS)}"
        ) from None


def records_for(app: str, scale: str = "small") -> int:
    return get_workload(app).records(scale)


def scenario_apps() -> tuple[str, ...]:
    """App tags covered by at least one scenario, in APP_ORDER."""
    covered = {s.app for s in SCENARIOS}
    return tuple(tag for tag in APP_ORDER if tag in covered)


def generate_input(app: str, scale: str = "small", seed: int | None = None) -> str:
    """The canonical datagen call for one app at one scale."""
    from ..apps import get_app

    workload = get_workload(app)
    return get_app(app).generate(
        workload.records(scale), seed if seed is not None else workload.seed
    )


def datagen_digest(app: str, scale: str = "small",
                   seed: int | None = None) -> str:
    """SHA-256 of the canonical input — the registry's determinism stamp."""
    return hashlib.sha256(
        generate_input(app, scale, seed).encode("utf-8")
    ).hexdigest()


# -- validation --------------------------------------------------------------

def validate_registry() -> None:
    """Cross-check every reference; raises ConfigError on the first hole."""
    from ..apps import get_app
    from ..scheduling import POLICIES

    seen: set[str] = set()
    for scenario in SCENARIOS:
        if scenario.id in seen:
            raise ConfigError(f"duplicate scenario id {scenario.id!r}")
        seen.add(scenario.id)
        get_app(scenario.app)                     # resolvable app tag
        get_shape(scenario.shape)                 # resolvable shape
        if scenario.policy not in POLICIES:
            raise ConfigError(
                f"scenario {scenario.id}: unknown policy {scenario.policy!r}"
            )
        if scenario.app not in WORKLOADS:
            raise ConfigError(
                f"scenario {scenario.id}: app {scenario.app} has no workload"
            )
        if scenario.cpu_task_seconds <= 0 or scenario.gpu_task_seconds <= 0:
            raise ConfigError(f"scenario {scenario.id}: non-positive durations")
    for app, workload in WORKLOADS.items():
        if app not in APP_ORDER:
            raise ConfigError(f"workload {app} missing from APP_ORDER")
        if not workload.small <= workload.medium <= workload.large:
            raise ConfigError(f"workload {app}: scales must be monotonic")
    for shape in SHAPES.values():
        shape.cluster()                           # base resolves, replace ok
