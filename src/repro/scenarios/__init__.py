"""Declarative scenario registry + sweep runner.

See :mod:`repro.scenarios.registry` for the tables and
:mod:`repro.scenarios.sweep` for the runner; ``docs/scenarios.md``
documents the schema and the ``repro sweep`` CLI.
"""

from .registry import (
    APP_ORDER,
    EXTENDED_APP_ORDER,
    PAPER_APP_ORDER,
    SCALES,
    SCENARIOS,
    SHAPES,
    WORKLOADS,
    ClusterShape,
    Scenario,
    Workload,
    all_scenarios,
    datagen_digest,
    generate_input,
    get_scenario,
    get_shape,
    get_workload,
    records_for,
    scenario_apps,
    validate_registry,
)
from .sweep import (
    DEFAULT_POLICIES,
    build_simulator,
    report_bytes,
    run_sweep,
    sweep_job_conf,
)

validate_registry()

__all__ = [
    "APP_ORDER", "EXTENDED_APP_ORDER", "PAPER_APP_ORDER", "SCALES",
    "SCENARIOS", "SHAPES", "WORKLOADS",
    "ClusterShape", "Scenario", "Workload",
    "all_scenarios", "datagen_digest", "generate_input", "get_scenario",
    "get_shape", "get_workload", "records_for", "scenario_apps",
    "validate_registry",
    "DEFAULT_POLICIES", "build_simulator", "report_bytes", "run_sweep",
    "sweep_job_conf",
]
