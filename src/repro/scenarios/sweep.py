"""Registry sweeps: run scenario slices through the cluster simulator
and emit canonical (byte-deterministic) JSON reports.

A sweep is scenarios × policies × one scale. Every case builds its
simulator purely from registry declarations — cluster shape (including
the heterogeneity speed map), per-task durations, map-pool size, seed —
so the same slice always yields the same report bytes: floats are
rounded before serialization, rows are sorted, keys are sorted, and no
wall-clock value enters the canonical payload.

``verify=True`` adds a functional conformance leg per scenario: the
app's canonical input at the sweep scale runs through both execution
paths (CPU Streaming and the simulated-GPU pipeline) and is checked
against the pure-Python reference, with the datagen and output digests
recorded in the report.
"""

from __future__ import annotations

import json
import math
from typing import Any, Iterable, Sequence

from ..errors import ConfigError
from ..hadoop.job import JobConf, JobResult
from ..hadoop.simulate import ClusterSimulator, TaskDurationModel
from ..scheduling import get_policy
from .registry import (
    SCALES,
    Scenario,
    all_scenarios,
    datagen_digest,
    generate_input,
    get_shape,
    get_workload,
)

#: Default policy slate: every scenario also runs under these, so each
#: sweep row set carries its own CPU-only baseline and the two paper
#: schedulers for comparison.
DEFAULT_POLICIES = ("cpu-only", "gpu-first", "tail")


def sweep_job_conf(scenario: Scenario, scale: str = "small") -> JobConf:
    shape = get_shape(scenario.shape)
    return JobConf(
        name=f"{scenario.id}-{scale}",
        num_map_tasks=scenario.map_tasks(scale),
        num_reduce_tasks=scenario.reduce_tasks,
        cluster=shape.cluster(),
        cpu_task_seconds=scenario.cpu_task_seconds,
        gpu_task_seconds=scenario.gpu_task_seconds,
        seed=scenario.seed,
    )


def build_simulator(scenario: Scenario, policy_name: str,
                    scale: str = "small") -> ClusterSimulator:
    """One simulator wired entirely from registry declarations."""
    shape = get_shape(scenario.shape)
    job = sweep_job_conf(scenario, scale)
    durations = TaskDurationModel(
        cpu_seconds=job.cpu_task_seconds,
        gpu_seconds=job.gpu_task_seconds,
        jitter=job.duration_jitter,
        nonlocal_penalty=job.nonlocal_read_penalty,
        seed=job.seed,
        node_speed_factors=shape.speed_factors(),
    )
    return ClusterSimulator(job, get_policy(policy_name), durations=durations)


def _result_row(scenario: Scenario, policy_name: str, scale: str,
                result: JobResult) -> dict[str, Any]:
    return {
        "scenario": scenario.id,
        "app": scenario.app,
        "shape": scenario.shape,
        "policy": policy_name,
        "scale": scale,
        "map_tasks": scenario.map_tasks(scale),
        "reduce_tasks": scenario.reduce_tasks,
        "job_seconds": result.job_seconds,
        "map_phase_seconds": result.map_phase_seconds,
        "reduce_phase_seconds": result.reduce_phase_seconds,
        "cpu_tasks": result.cpu_tasks,
        "gpu_tasks": result.gpu_tasks,
        "forced_gpu_tasks": result.forced_gpu_tasks,
        "data_local_fraction": result.data_local_fraction,
        "failures": result.failures,
    }


def _verify_scenario(scenario: Scenario, scale: str) -> dict[str, Any]:
    """Functional conformance: CPU path vs GPU path vs reference."""
    from ..apps import get_app
    from ..hadoop.local import LocalJobRunner

    app = get_app(scenario.app)
    text = generate_input(scenario.app, scale, seed=scenario.seed)
    reference = app.reference(text) if app.reference else None
    cpu = LocalJobRunner(app, use_gpu=False, split_bytes=16 * 1024).run(text)
    gpu = LocalJobRunner(app, use_gpu=True, split_bytes=16 * 1024).run(text)

    def mismatch(got: dict, want: dict, what: str) -> None:
        raise ConfigError(
            f"scenario {scenario.id}: {what} diverged at scale {scale} "
            f"({len(got)} vs {len(want)} keys)"
        )

    for label, got, want in (
        ("cpu-vs-gpu", gpu.output, cpu.output),
        ("cpu-vs-reference", cpu.output, reference),
    ):
        if want is None:
            continue
        if set(got) != set(want):
            mismatch(got, want, label)
        for key, value in want.items():
            other = got[key]
            if isinstance(value, float) or isinstance(other, float):
                if not math.isclose(float(other), float(value),
                                    rel_tol=1e-4, abs_tol=1e-3):
                    mismatch(got, want, label)
            elif other != value:
                mismatch(got, want, label)

    output_blob = json.dumps(
        {str(k): cpu.output[k] for k in cpu.output},
        sort_keys=True, separators=(",", ":"),
    )
    import hashlib

    return {
        "records": get_workload(scenario.app).records(scale),
        "datagen_sha256": datagen_digest(scenario.app, scale,
                                         seed=scenario.seed),
        "output_sha256": hashlib.sha256(output_blob.encode()).hexdigest(),
        "output_keys": len(cpu.output),
        "paths_agree": True,
    }


def run_sweep(scenarios: Sequence[Scenario] | None = None,
              policies: Iterable[str] | None = None,
              scale: str = "small",
              verify: bool = False) -> dict[str, Any]:
    """Run a registry slice; returns the report dict (canonicalized)."""
    if scale not in SCALES:
        raise ConfigError(f"unknown scale {scale!r}; known: {SCALES}")
    chosen = tuple(scenarios) if scenarios is not None else all_scenarios()
    if not chosen:
        raise ConfigError("sweep selected no scenarios")
    slate = tuple(policies) if policies is not None else DEFAULT_POLICIES

    results: list[dict[str, Any]] = []
    verifications: dict[str, dict[str, Any]] = {}
    for scenario in chosen:
        names: list[str] = list(slate)
        if scenario.policy not in names:
            names.append(scenario.policy)
        rows: dict[str, dict[str, Any]] = {}
        for name in names:
            result = build_simulator(scenario, name, scale).run()
            rows[name] = _result_row(scenario, name, scale, result)
        baseline = rows.get("cpu-only")
        for row in rows.values():
            if baseline is not None and row["job_seconds"] > 0:
                row["speedup_vs_cpu_only"] = (
                    baseline["job_seconds"] / row["job_seconds"]
                )
        results.extend(rows.values())
        if verify:
            verifications[scenario.id] = _verify_scenario(scenario, scale)

    results.sort(key=lambda row: (row["scenario"], row["policy"]))
    report: dict[str, Any] = {
        "sweep": "scenario-registry cluster sweep",
        "scale": scale,
        "policies": sorted(slate),
        "scenarios": [s.id for s in chosen],
        "results": results,
    }
    if verify:
        report["verification"] = verifications
    return _canonical(report)


def _canonical(value: Any) -> Any:
    """Round floats (6 places) recursively so reports are byte-stable."""
    if isinstance(value, float):
        return round(value, 6)
    if isinstance(value, dict):
        return {k: _canonical(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_canonical(v) for v in value]
    return value


def report_bytes(report: dict[str, Any]) -> bytes:
    """The canonical serialization: sorted keys, fixed separators."""
    return (json.dumps(report, indent=2, sort_keys=True) + "\n").encode("utf-8")
