"""HeteroDoop reproduction — a MapReduce programming system for
accelerator clusters (Sabne, Sakdhnagool, Eigenmann; HPDC 2015), rebuilt
in pure Python.

The package mirrors the paper's architecture:

* :mod:`repro.minic` — the C-dialect frontend (the input language),
* :mod:`repro.directives` — ``#pragma mapreduce`` parsing (Table 1),
* :mod:`repro.compiler` — the source-to-source translator (§4),
* :mod:`repro.gpu` — the warp-level GPU simulator,
* :mod:`repro.kvstore` — global KV store, partitioning, aggregation,
* :mod:`repro.runtime` — the GPU task pipeline and driver (§5),
* :mod:`repro.hdfs` / :mod:`repro.hadoop` — the distributed substrate,
* :mod:`repro.scheduling` — GPU-first and tail scheduling (§6),
* :mod:`repro.apps` — the eight Table 2 benchmarks,
* :mod:`repro.experiments` — regeneration of every table and figure.

Quick start::

    from repro.apps import get_app
    from repro.hadoop.local import LocalJobRunner

    app = get_app("WC")
    text = app.generate(1000, seed=7)
    result = LocalJobRunner(app, use_gpu=True).run(text)
    assert result.output == LocalJobRunner(app, use_gpu=False).run(text).output
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
