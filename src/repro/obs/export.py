"""Chrome trace-event export and schema validation.

:func:`export_chrome` turns a :class:`~repro.obs.trace.TraceRecorder`
into the Chrome/Perfetto trace-event JSON object form (load it at
``chrome://tracing`` or https://ui.perfetto.dev). :func:`dumps` renders
it to *canonical bytes* — compact separators, sorted keys, one trailing
newline — so two identical runs serialize byte-for-byte identically and
a committed golden trace can be compared with ``==`` on file contents.

Conventions:

* pids/tids are small integers assigned in first-seen track order;
  the human names travel in ``process_name`` / ``thread_name`` metadata
  events (the format's own labeling mechanism).
* ``ts``/``dur`` are microseconds of **simulated** time, rounded to
  1e-3 µs (simulated nanoseconds). Host wall-clock durations are
  excluded unless ``include_wall=True`` adds them under
  ``args["wall_ms"]`` — never in golden traces.
* Counter samples become ``ph: "C"`` events; the final metrics registry
  is embedded once under ``otherData.metrics``.

:func:`validate_trace` is the schema gate used by the trace tests and
the CLI: it checks the object form, the per-phase event fields, and the
pid/tid ↔ metadata correspondence, returning a list of problems (empty
when valid).
"""

from __future__ import annotations

import json
from typing import Any

from ..errors import ReproError
from .trace import CounterEvent, InstantEvent, SpanEvent, TraceRecorder

__all__ = ["export_chrome", "dumps", "validate_trace", "TraceSchemaError"]


class TraceSchemaError(ReproError):
    """A trace failed schema validation."""


#: Substring marking a pid as a spliced pool-worker track
#: (``<pid>@w<os-pid>`` — see repro.hadoop.local's parallel merge).
WORKER_PID_MARKER = "@w"


def _us(seconds: float) -> float:
    """Simulated seconds → trace microseconds (ns-resolution grid)."""
    return round(seconds * 1e6, 3)


def export_chrome(recorder: TraceRecorder,
                  include_wall: bool = False) -> dict[str, Any]:
    """The Chrome trace-event JSON object for one recorded run."""
    if recorder.open_spans():
        names = ", ".join(s.name for s in recorder.open_spans())
        raise ReproError(f"cannot export with open spans: {names}")

    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}
    events: list[dict[str, Any]] = []
    for pid_name, tid_name in recorder.tracks:
        if pid_name not in pids:
            pids[pid_name] = len(pids) + 1
            events.append({
                "name": "process_name", "ph": "M", "pid": pids[pid_name],
                "tid": 0, "args": {"name": pid_name},
            })
            if WORKER_PID_MARKER in pid_name:
                # Spliced worker tracks (see TraceRecorder.splice) sort
                # below the parent's own tracks in the viewer. Only
                # parallel runs have such pids, so serial exports —
                # including the golden traces — are byte-unchanged.
                events.append({
                    "name": "process_sort_index", "ph": "M",
                    "pid": pids[pid_name], "tid": 0,
                    "args": {"sort_index": 100 + pids[pid_name]},
                })
        key = (pid_name, tid_name)
        if key not in tids:
            tids[key] = sum(1 for p, _t in tids if p == pid_name) + 1
            events.append({
                "name": "thread_name", "ph": "M", "pid": pids[pid_name],
                "tid": tids[key], "args": {"name": tid_name},
            })

    for event in recorder.events:
        if isinstance(event, SpanEvent):
            out: dict[str, Any] = {
                "name": event.name, "cat": event.cat, "ph": "X",
                "pid": pids[event.pid], "tid": tids[(event.pid, event.tid)],
                "ts": _us(event.ts), "dur": _us(event.dur or 0.0),
            }
            args = dict(event.args)
            if include_wall and event.wall_dur is not None:
                args["wall_ms"] = round(event.wall_dur * 1e3, 6)
            if args:
                out["args"] = args
        elif isinstance(event, InstantEvent):
            out = {
                "name": event.name, "cat": event.cat, "ph": "i", "s": "t",
                "pid": pids[event.pid], "tid": tids[(event.pid, event.tid)],
                "ts": _us(event.ts),
            }
            if event.args:
                out["args"] = dict(event.args)
        elif isinstance(event, CounterEvent):
            out = {
                "name": event.name, "ph": "C", "pid": pids[event.pid],
                "tid": 0, "ts": _us(event.ts), "args": dict(event.values),
            }
        else:  # pragma: no cover - recorder only produces the three kinds
            raise ReproError(f"unknown event type {type(event).__name__}")
        events.append(out)

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "simulated-seconds",
            "generator": "repro.obs",
            "metrics": recorder.metrics.snapshot(),
        },
    }


def dumps(trace: dict[str, Any]) -> str:
    """Canonical serialization (stable bytes for golden comparisons)."""
    return json.dumps(trace, sort_keys=True, separators=(",", ":")) + "\n"


_PHASES = {"M", "X", "i", "C"}
_META_NAMES = {"process_name", "thread_name",
               "process_sort_index", "thread_sort_index"}


def _is_num(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_trace(trace: Any) -> list[str]:
    """Validate the object form; returns a list of problems (empty = ok)."""
    problems: list[str] = []
    if not isinstance(trace, dict):
        return [f"trace must be a JSON object, got {type(trace).__name__}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]

    named_pids: set[int] = set()
    named_tids: set[tuple[int, int]] = set()
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _PHASES:
            problems.append(f"{where}: bad ph {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            problems.append(f"{where}: missing/empty name")
        if not isinstance(ev.get("pid"), int):
            problems.append(f"{where}: pid must be an int")
            continue
        if ph == "M":
            if ev["name"] not in _META_NAMES:
                problems.append(f"{where}: unknown metadata {ev['name']!r}")
            elif ev["name"] == "process_name":
                named_pids.add(ev["pid"])
            elif ev["name"] == "thread_name":
                named_tids.add((ev["pid"], ev.get("tid", 0)))
            continue
        if not _is_num(ev.get("ts")) or ev["ts"] < 0:
            problems.append(f"{where}: ts must be a non-negative number")
        if ev["pid"] not in named_pids:
            problems.append(f"{where}: pid {ev['pid']} has no process_name")
        if ph == "X":
            if not isinstance(ev.get("cat"), str):
                problems.append(f"{where}: complete event needs a cat")
            if not _is_num(ev.get("dur")) or ev["dur"] < 0:
                problems.append(f"{where}: dur must be a non-negative number")
            if (ev["pid"], ev.get("tid")) not in named_tids:
                problems.append(
                    f"{where}: tid {ev.get('tid')} has no thread_name"
                )
        elif ph == "i":
            if ev.get("s") not in ("t", "p", "g"):
                problems.append(f"{where}: instant scope must be t/p/g")
        elif ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                problems.append(f"{where}: counter needs numeric args")
            elif not all(_is_num(v) for v in args.values()):
                problems.append(f"{where}: counter args must be numbers")
        args = ev.get("args")
        if args is not None and not isinstance(args, dict):
            problems.append(f"{where}: args must be an object")
    return problems


def check_trace(trace: Any) -> None:
    """Raise :class:`TraceSchemaError` on the first validation problem."""
    problems = validate_trace(trace)
    if problems:
        raise TraceSchemaError(
            f"{len(problems)} schema problem(s): " + "; ".join(problems[:5])
        )
