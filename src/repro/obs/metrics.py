"""Counter / gauge registry (the metrics half of the obs layer).

Counters are monotonic event tallies (heartbeats answered, tasks forced
onto GPUs, KV pairs emitted); gauges hold last-written values (queue
depth, remaining maps). Both live in one :class:`MetricsRegistry` keyed
by dotted names, so a whole run's metrics serialize to a flat dict.

The registry is deliberately dependency-free and allocation-light: a
counter bump is one dict operation. Instrumentation sites reach it
through the active recorder (``obs.active().inc(...)``), which is a
no-op when tracing is disabled.
"""

from __future__ import annotations

from ..errors import ReproError

__all__ = ["MetricsRegistry"]


class MetricsRegistry:
    """Flat registries of counters and gauges, keyed by dotted names."""

    __slots__ = ("counters", "gauges")

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}

    # -- counters -----------------------------------------------------------

    def inc(self, name: str, n: float = 1.0) -> None:
        """Add ``n`` to counter ``name`` (created at 0 on first use)."""
        if n < 0:
            raise ReproError(f"counter {name!r} cannot decrease (n={n})")
        self.counters[name] = self.counters.get(name, 0.0) + n

    def count(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    # -- gauges -------------------------------------------------------------

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self.gauges[name] = value

    def gauge_value(self, name: str, default: float = 0.0) -> float:
        return self.gauges.get(name, default)

    # -- export -------------------------------------------------------------

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Stable (sorted-key) copy of both registries."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
        }

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (counters add, gauges last-write)."""
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0.0) + value
        self.gauges.update(other.gauges)
