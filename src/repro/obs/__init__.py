"""Observability: structured tracing + metrics for every layer.

Zero-dependency substrate behind the ``repro trace`` / ``repro stats``
CLI and the golden-trace tests:

* :mod:`repro.obs.trace` — span/instant/counter recorder with dual
  clocks (deterministic simulated seconds + optional host wall-clock);
  off by default behind one ``enabled`` branch (:data:`NULL_RECORDER`).
* :mod:`repro.obs.metrics` — counter/gauge registry.
* :mod:`repro.obs.export` — canonical Chrome trace-event JSON export
  plus a schema validator.

Typical use::

    from repro import obs

    with obs.use_recorder(obs.TraceRecorder()) as rec:
        LocalJobRunner(app).run(text)
    open("job.trace.json", "w").write(obs.dumps(obs.export_chrome(rec)))

See docs/observability.md for the recorder API, clock semantics, the
trace format, and the triage workflow.
"""

from .export import (
    TraceSchemaError,
    check_trace,
    dumps,
    export_chrome,
    validate_trace,
)
from .metrics import MetricsRegistry
from .trace import (
    CounterEvent,
    InstantEvent,
    NULL_RECORDER,
    NullRecorder,
    SpanEvent,
    TraceRecorder,
    active,
    install,
    use_recorder,
)

__all__ = [
    "CounterEvent", "InstantEvent", "SpanEvent",
    "MetricsRegistry", "NullRecorder", "TraceRecorder", "NULL_RECORDER",
    "active", "install", "use_recorder",
    "TraceSchemaError", "check_trace", "dumps", "export_chrome",
    "validate_trace",
]
