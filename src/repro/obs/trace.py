"""Structured tracing: spans, instants, and counter samples.

The recorder model
------------------

One process-global *recorder* is active at any time. The default is a
:class:`NullRecorder` whose ``enabled`` flag is ``False`` — every
instrumentation site in the runner, simulator, and GPU engine guards its
work behind that single attribute check, so tracing costs one branch
when off. Tests and the ``repro trace`` / ``repro stats`` CLI install a
:class:`TraceRecorder` with :func:`use_recorder`.

Events live on *tracks* — a ``(pid, tid)`` pair matching the Chrome
trace-event model: the pid groups a timeline (a cluster node, the GPU
device, the local job), the tid is one lane within it (a CPU/GPU slot,
an SM, the task pipeline).

Clocks
------

Every timestamp is in **simulated seconds** — the EventLoop's ``now`` in
the cluster simulator, or the cost models' charged seconds in the
functional runner and GPU pipeline. Simulated time is deterministic, so
identical runs produce byte-identical traces (the golden-trace tests
rely on this). A span can *additionally* carry host wall-clock seconds
(``wall_dur``, from ``time.perf_counter``) when the recorder is built
with ``record_wall=True``; wall durations never enter the canonical
export (see :mod:`repro.obs.export`), they only feed overhead triage.

Sites that have no global clock (the functional runner lays tasks out
one after another) omit ``ts``: each track keeps a *cursor* — the end of
the last span recorded on it — and cursor-mode spans start there, so a
sequential execution renders as a contiguous timeline.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..errors import ReproError
from .metrics import MetricsRegistry

__all__ = [
    "SpanEvent", "InstantEvent", "CounterEvent",
    "NullRecorder", "TraceRecorder", "NULL_RECORDER",
    "active", "install", "use_recorder",
]


@dataclass
class SpanEvent:
    """One completed (or still-open) span on a track."""

    name: str
    cat: str
    pid: str
    tid: str
    ts: float                      # simulated seconds
    dur: float | None = None       # None while the span is open
    args: dict[str, Any] = field(default_factory=dict)
    wall_dur: float | None = None  # host seconds (optional second clock)
    _wall_start: float | None = None

    @property
    def end(self) -> float:
        if self.dur is None:
            raise ReproError(f"span {self.name!r} is still open")
        return self.ts + self.dur


@dataclass
class InstantEvent:
    """A point event (a heartbeat grant, a tail-forcing decision)."""

    name: str
    cat: str
    pid: str
    tid: str
    ts: float
    args: dict[str, Any] = field(default_factory=dict)


@dataclass
class CounterEvent:
    """A sampled counter series value (Chrome renders these as areas)."""

    name: str
    pid: str
    ts: float
    values: dict[str, float] = field(default_factory=dict)


class NullRecorder:
    """The disabled recorder: every operation is a no-op.

    Instrumentation sites check ``enabled`` once and skip span/metric
    construction entirely, so a disabled run pays one attribute load per
    site — the "near-zero overhead" contract the bench guard enforces.
    """

    enabled = False

    def begin(self, *a: Any, **k: Any) -> None:
        return None

    def end(self, *a: Any, **k: Any) -> None:
        return None

    def complete(self, *a: Any, **k: Any) -> None:
        return None

    def instant(self, *a: Any, **k: Any) -> None:
        return None

    def counter(self, *a: Any, **k: Any) -> None:
        return None

    def inc(self, *a: Any, **k: Any) -> None:
        return None

    def gauge(self, *a: Any, **k: Any) -> None:
        return None

    @contextmanager
    def span(self, *a: Any, **k: Any) -> Iterator[None]:
        yield None


class TraceRecorder:
    """Collects spans/instants/counters plus a metrics registry."""

    enabled = True

    def __init__(self, record_wall: bool = False) -> None:
        self.events: list[SpanEvent | InstantEvent | CounterEvent] = []
        self.metrics = MetricsRegistry()
        self.record_wall = record_wall
        #: Per-track stack of open spans (nesting) and time cursor.
        self._open: dict[tuple[str, str], list[SpanEvent]] = {}
        self._cursor: dict[tuple[str, str], float] = {}
        #: Tracks in first-seen order (drives export metadata).
        self.tracks: list[tuple[str, str]] = []

    # -- track bookkeeping ---------------------------------------------------

    def _track(self, pid: str, tid: str) -> tuple[str, str]:
        key = (pid, tid)
        if key not in self._cursor:
            self._cursor[key] = 0.0
            self._open[key] = []
            self.tracks.append(key)
        return key

    def cursor(self, pid: str, tid: str) -> float:
        """The end of the last span recorded on a track (0.0 if none)."""
        return self._cursor.get((pid, tid), 0.0)

    def _advance(self, key: tuple[str, str], ts: float) -> None:
        if ts > self._cursor[key]:
            self._cursor[key] = ts

    # -- spans ---------------------------------------------------------------

    def begin(self, name: str, cat: str, pid: str, tid: str,
              ts: float | None = None,
              args: dict[str, Any] | None = None) -> SpanEvent:
        """Open a span; nested under the track's currently open span."""
        key = self._track(pid, tid)
        open_stack = self._open[key]
        if ts is None:
            ts = open_stack[-1].ts if open_stack else self._cursor[key]
            ts = max(ts, self._cursor[key])
        span = SpanEvent(name=name, cat=cat, pid=pid, tid=tid, ts=ts,
                         args=args or {})
        if self.record_wall:
            span._wall_start = time.perf_counter()
        open_stack.append(span)
        self.events.append(span)
        return span

    def end(self, span: SpanEvent, ts: float | None = None,
            args: dict[str, Any] | None = None) -> SpanEvent:
        """Close a span. ``ts`` defaults to the track cursor (covering
        every child span recorded meanwhile)."""
        key = (span.pid, span.tid)
        stack = self._open.get(key, [])
        if span not in stack:
            raise ReproError(f"span {span.name!r} is not open on {key}")
        if stack[-1] is not span:
            raise ReproError(
                f"span {span.name!r} closed out of order on {key} "
                f"(innermost open is {stack[-1].name!r})"
            )
        stack.pop()
        if ts is None:
            ts = max(self._cursor[key], span.ts)
        if ts < span.ts:
            raise ReproError(
                f"span {span.name!r} ends at {ts} before it starts ({span.ts})"
            )
        span.dur = ts - span.ts
        if args:
            span.args.update(args)
        if span._wall_start is not None:
            span.wall_dur = time.perf_counter() - span._wall_start
            span._wall_start = None
        self._advance(key, ts)
        return span

    @contextmanager
    def span(self, name: str, cat: str, pid: str, tid: str,
             ts: float | None = None,
             args: dict[str, Any] | None = None) -> Iterator[SpanEvent]:
        handle = self.begin(name, cat, pid, tid, ts=ts, args=args)
        try:
            yield handle
        finally:
            if handle.dur is None:  # allow an explicit early end()
                self.end(handle)

    def complete(self, name: str, cat: str, pid: str, tid: str, dur: float,
                 ts: float | None = None,
                 args: dict[str, Any] | None = None) -> SpanEvent:
        """Record an already-measured span in one call.

        Cursor mode (``ts=None``) appends it after the last span on the
        track — the functional runner uses this to lay per-task phase
        durations out as a contiguous timeline.
        """
        if dur < 0:
            raise ReproError(f"span {name!r} has negative duration {dur}")
        key = self._track(pid, tid)
        if ts is None:
            ts = self._cursor[key]
        span = SpanEvent(name=name, cat=cat, pid=pid, tid=tid, ts=ts,
                         dur=dur, args=args or {})
        self.events.append(span)
        self._advance(key, ts + dur)
        return span

    # -- instants / counters -------------------------------------------------

    def instant(self, name: str, cat: str, pid: str, tid: str,
                ts: float | None = None,
                args: dict[str, Any] | None = None) -> InstantEvent:
        key = self._track(pid, tid)
        if ts is None:
            ts = self._cursor[key]
        event = InstantEvent(name=name, cat=cat, pid=pid, tid=tid, ts=ts,
                             args=args or {})
        self.events.append(event)
        return event

    def counter(self, name: str, pid: str, values: dict[str, float],
                ts: float) -> CounterEvent:
        event = CounterEvent(name=name, pid=pid, ts=ts, values=dict(values))
        self.events.append(event)
        return event

    # -- cross-process merge -------------------------------------------------

    def splice(self, events: list[SpanEvent | InstantEvent | CounterEvent],
               pid_suffix: str = "") -> None:
        """Merge events recorded by another (per-worker) recorder.

        Worker recorders start their clocks at 0 for every task, so each
        spliced track is *rebased*: the first time a source track appears
        in this call, its base becomes the destination track's current
        cursor, and every event from that source track shifts by that
        base. Relative timing within a track is preserved, so spans that
        nested (or were disjoint) at the source still nest (or stay
        disjoint) at the destination — the per-track invariants the span
        checker enforces survive the merge. ``pid_suffix`` maps worker
        tracks onto distinct destination pids (e.g. ``"@w1234"`` for the
        worker with OS pid 1234) so the Chrome export shows true
        process-level overlap.
        """
        bases: dict[tuple[str, str], float] = {}
        for event in events:
            pid = event.pid + pid_suffix
            tid = event.tid if not isinstance(event, CounterEvent) else ""
            src = (event.pid, event.tid if not isinstance(event, CounterEvent)
                   else "")
            key = self._track(pid, tid or "counters")
            if src not in bases:
                bases[src] = self._cursor[key]
            base = bases[src]
            if isinstance(event, SpanEvent):
                if event.dur is None:
                    raise ReproError(
                        f"cannot splice open span {event.name!r}"
                    )
                copied = SpanEvent(
                    name=event.name, cat=event.cat, pid=pid, tid=tid,
                    ts=base + event.ts, dur=event.dur,
                    args=dict(event.args), wall_dur=event.wall_dur,
                )
                self.events.append(copied)
                self._advance(key, copied.ts + copied.dur)
            elif isinstance(event, InstantEvent):
                self.events.append(InstantEvent(
                    name=event.name, cat=event.cat, pid=pid, tid=tid,
                    ts=base + event.ts, args=dict(event.args),
                ))
            else:
                self.events.append(CounterEvent(
                    name=event.name, pid=pid, ts=base + event.ts,
                    values=dict(event.values),
                ))

    # -- metrics passthrough -------------------------------------------------

    def inc(self, name: str, n: float = 1.0) -> None:
        self.metrics.inc(name, n)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name, value)

    # -- introspection -------------------------------------------------------

    def open_spans(self) -> list[SpanEvent]:
        """Spans begun but not yet ended (must be empty after a run)."""
        return [s for stack in self._open.values() for s in stack]

    def spans(self, cat: str | None = None) -> list[SpanEvent]:
        return [
            e for e in self.events
            if isinstance(e, SpanEvent) and (cat is None or e.cat == cat)
        ]


#: The process-wide disabled recorder (shared; it has no state).
NULL_RECORDER = NullRecorder()

_active: NullRecorder | TraceRecorder = NULL_RECORDER


def active() -> NullRecorder | TraceRecorder:
    """The recorder instrumentation sites talk to."""
    return _active


def install(recorder: NullRecorder | TraceRecorder) \
        -> NullRecorder | TraceRecorder:
    """Swap the active recorder; returns the previous one."""
    global _active
    previous = _active
    _active = recorder
    return previous


@contextmanager
def use_recorder(recorder: TraceRecorder) -> Iterator[TraceRecorder]:
    """Activate a recorder for the duration of a ``with`` block."""
    previous = install(recorder)
    try:
        yield recorder
    finally:
        install(previous)
