"""Histratings (HR) — PUMA benchmark, compute-intensive.

Bins every individual review rating of every movie (paper §7.1: 'Since
the combiner receives larger data to operate on, histratings becomes
more compute intensive than histmovies'). Same input as HS; the map
emits <rating, 1> per rating — an order of magnitude more KV pairs, so
combine dominates.
"""

from __future__ import annotations

from collections import Counter
from typing import Any

from . import datagen
from .base import Application, AppRegistry, ClusterFigures
from .combiners import INT_KEY_INT_SUM

MAP_SOURCE = r'''
int main()
{
    char tok[32], *line;
    size_t nbytes = 100000;
    int read, off, lp, rating, one, first;
    line = (char*) malloc(nbytes*sizeof(char));
    #pragma mapreduce mapper key(rating) value(one) kvpairs(70)
    while( (read = getline(&line, &nbytes, stdin)) != -1) {
        off = 0;
        first = 1;
        one = 1;
        while( (lp = getWord(line, off, tok, read, 32)) != -1) {
            off += lp;
            if( first ) {
                first = 0;       /* skip the movieId field */
            } else {
                rating = atoi(tok);
                printf("%d\t%d\n", rating, one);
            }
        }
    }
    free(line);
    return 0;
}
'''


def _reference(split_text: str) -> dict[Any, Any]:
    bins: Counter[int] = Counter()
    for line in split_text.splitlines():
        parts = line.split()
        for tok in parts[1:]:
            bins[int(tok)] += 1
    return dict(bins)


def _reduce(key: Any, values: list[Any]) -> list[tuple[Any, Any]]:
    return [(key, sum(int(v) for v in values))]


def _generate(records: int, seed: int) -> str:
    return datagen.movie_ratings(records, seed)


HISTRATINGS = AppRegistry.register(
    Application(
        name="histratings",
        short="HR",
        nature="Compute",
        map_source=MAP_SOURCE,
        combine_source=INT_KEY_INT_SUM,
        reduce_source=INT_KEY_INT_SUM,
        reduce_py=_reduce,
        pct_map_combine_active=92,
        cluster1=ClusterFigures(reduce_tasks=5, map_tasks=4800, input_gb=591),
        cluster2=ClusterFigures(reduce_tasks=5, map_tasks=2560, input_gb=160),
        generate=_generate,
        reference=_reference,
        record_skew=4.0,
    )
)
