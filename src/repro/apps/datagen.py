"""Seeded synthetic workload generators.

Substitutes for the PUMA datasets (Wikipedia text, Netflix movie ratings)
and the scientific inputs the paper used — shaped to preserve the
properties the evaluation depends on: word-frequency skew (sort/combine
load), per-record length skew (record stealing), rating distributions
(histogram bins), cluster structure (kmeans/classification), and option
parameter ranges (blackScholes).
"""

from __future__ import annotations

import math
import random

# A Zipf-ish vocabulary: common words dominate like natural text.
_VOCAB_COMMON = (
    "the of and a to in is was he for it with as his on be at by i this had "
    "not are but from or have an they which one you were her all she there "
    "would their we him been has when who will more no if out so said what"
).split()
_VOCAB_RARE_PREFIXES = (
    "data cluster gpu map reduce stream kernel record shuffle block warp "
    "thread merge sort spill split tracker node task heap cache"
).split()


def _rng(seed: int) -> random.Random:
    return random.Random(seed)


def make_vocabulary(size: int, seed: int = 7) -> list[str]:
    rng = _rng(seed)
    vocab = list(_VOCAB_COMMON)
    while len(vocab) < size:
        prefix = rng.choice(_VOCAB_RARE_PREFIXES)
        vocab.append(f"{prefix}{rng.randint(0, 9999)}")
    return vocab[:size]


def zipf_text(records: int, seed: int = 0, words_per_line: tuple[int, int] = (4, 14),
              vocab_size: int = 400) -> str:
    """Zipf-distributed text, one line per record (wordcount/grep input)."""
    rng = _rng(seed)
    vocab = make_vocabulary(vocab_size, seed=seed + 1)
    weights = [1.0 / (rank + 1) for rank in range(len(vocab))]
    lines = []
    for _ in range(records):
        k = rng.randint(*words_per_line)
        lines.append(" ".join(rng.choices(vocab, weights=weights, k=k)))
    return "\n".join(lines) + "\n"


def movie_ratings(records: int, seed: int = 0, max_reviews: int = 100,
                  skewed: bool = True) -> str:
    """Netflix-style records: ``movieId: r1 r2 r3 ...`` with a heavy-tailed
    review count per movie ('some records have fewer reviews than others',
    paper §4.1 — the load imbalance record stealing targets)."""
    rng = _rng(seed)
    lines = []
    for movie in range(records):
        if skewed:
            # Pareto-ish review counts: a few blockbusters, many obscure.
            n = min(max_reviews, max(3, int(6 * rng.paretovariate(1.2))))
        else:
            n = max(1, max_reviews // 2)
        ratings = [str(rng.randint(1, 5)) for _ in range(n)]
        lines.append(f"{movie}: " + " ".join(ratings))
    return "\n".join(lines) + "\n"


def point_cloud(records: int, seed: int = 0, dims: int = 8,
                clusters: int = 8, spread: float = 0.6) -> str:
    """Gaussian clusters in ``dims``-D: ``x1 x2 ... xd`` per line
    (kmeans/classification input). Cluster centers are a deterministic
    lattice so the mini-C sources can regenerate them."""
    rng = _rng(seed)
    lines = []
    for i in range(records):
        c = rng.randrange(clusters)
        center = [cluster_center(c, d, clusters) for d in range(dims)]
        coords = [f"{rng.gauss(center[d], spread):.4f}" for d in range(dims)]
        lines.append(" ".join(coords))
    return "\n".join(lines) + "\n"


def cluster_center(cluster: int, dim: int, clusters: int) -> float:
    """Deterministic centroid lattice shared by datagen and the mini-C
    sources (which cannot read auxiliary files)."""
    return 10.0 * math.sin(1.7 * cluster + 0.9 * dim) \
        + 3.0 * math.cos(0.3 * cluster * dim)


def point_stream(records: int, seed: int = 0, dims: int = 8,
                 clusters: int = 8, spread: float = 0.6,
                 max_points_per_record: int = 10) -> str:
    """Kmeans input: each record packs a *variable* number of points
    (``x1 .. x(8m)``), giving the record-length skew that makes record
    stealing matter (paper §4.1's kmeans example)."""
    rng = _rng(seed)
    lines = []
    for _ in range(records):
        m = max(1, min(max_points_per_record, int(rng.paretovariate(1.5))))
        coords: list[str] = []
        for _p in range(m):
            c = rng.randrange(clusters)
            coords.extend(
                f"{rng.gauss(cluster_center(c, d, clusters), spread):.4f}"
                for d in range(dims)
            )
        lines.append(" ".join(coords))
    return "\n".join(lines) + "\n"


def regression_rows(records: int, seed: int = 0, regressors: int = 12) -> str:
    """Rows of ``y x1 .. xk`` with a fixed ground-truth coefficient vector
    plus noise (linear regression input; paper: 12 regressors)."""
    rng = _rng(seed)
    beta = [((j % 5) - 2) * 0.5 + 0.1 for j in range(regressors)]
    lines = []
    for _ in range(records):
        xs = [rng.uniform(-2.0, 2.0) for _ in range(regressors)]
        y = sum(b * x for b, x in zip(beta, xs)) + rng.gauss(0.0, 0.05)
        lines.append(f"{y:.5f} " + " ".join(f"{x:.5f}" for x in xs))
    return "\n".join(lines) + "\n"


def doc_lines(records: int, seed: int = 0, vocab_size: int = 300,
              words_per_doc: tuple[int, int] = (6, 18)) -> str:
    """Inverted-index input: ``docId w1 w2 ...`` per line, Zipf words."""
    rng = _rng(seed)
    vocab = make_vocabulary(vocab_size, seed=seed + 1)
    weights = [1.0 / (rank + 1) for rank in range(len(vocab))]
    lines = []
    for doc in range(records):
        k = rng.randint(*words_per_doc)
        lines.append(f"{doc} " + " ".join(rng.choices(vocab, weights=weights, k=k)))
    return "\n".join(lines) + "\n"


def join_rows(records: int, seed: int = 0, keys: int | None = None) -> str:
    """Two-table join input: ``R key payload`` / ``S key payload`` rows.
    Join keys collide across both tables so reducers see real matches."""
    rng = _rng(seed)
    nkeys = keys if keys is not None else max(4, records // 6)
    lines = []
    for _ in range(records):
        side = "R" if rng.random() < 0.55 else "S"
        key = rng.randrange(nkeys)
        lines.append(f"{side} {key} p{rng.randint(0, 9999)}")
    return "\n".join(lines) + "\n"


def sort_records(records: int, seed: int = 0, key_digits: int = 8) -> str:
    """Terasort-style input: zero-padded decimal sort key + payload.
    Leading-zero keys stay *text* under the streaming coercion rules
    while zero-free keys become ints — the mix exercises the numeric-
    before-text comparator exactly where real sort benchmarks do."""
    rng = _rng(seed)
    bound = 10 ** key_digits
    lines = []
    for i in range(records):
        key = rng.randrange(bound)
        lines.append(f"{key:0{key_digits}d} row{i} {rng.randint(0, 9999)}")
    return "\n".join(lines) + "\n"


def adjacency(records: int, seed: int = 0, max_out: int = 8) -> str:
    """PageRank input: ``src dst1 .. dstm`` per line, one line per node.
    Out-degrees are skewed and duplicate edges are allowed (multigraph)."""
    rng = _rng(seed)
    lines = []
    for src in range(records):
        m = max(1, min(max_out, int(rng.paretovariate(1.3))))
        dsts = [str(rng.randrange(records)) for _ in range(m)]
        lines.append(f"{src} " + " ".join(dsts))
    return "\n".join(lines) + "\n"


def option_chain(records: int, seed: int = 0) -> str:
    """BlackScholes input: ``id spot strike years rate volatility``."""
    rng = _rng(seed)
    lines = []
    for i in range(records):
        spot = rng.uniform(10.0, 200.0)
        strike = spot * rng.uniform(0.6, 1.4)
        years = rng.uniform(0.1, 3.0)
        rate = rng.uniform(0.01, 0.08)
        vol = rng.uniform(0.1, 0.6)
        lines.append(
            f"{i} {spot:.4f} {strike:.4f} {years:.4f} {rate:.4f} {vol:.4f}"
        )
    return "\n".join(lines) + "\n"
