"""PageRank (PR) — one damped power-iteration step, compute-leaning.

Input records are adjacency lists ``src dst1 .. dstm``; the map scatters
``1/m`` of the source's rank mass to each destination and a zero
self-contribution for the source (so dangling nodes still appear in the
output), and the reducer applies the damping update
``rank = 0.15 + 0.85 * sum`` — the standard MapReduce formulation of one
PageRank iteration with uniform starting ranks. Float-valued pairs give
the combiner the same partial-sum shape as LR's Gram products.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

from . import datagen
from .base import Application, AppRegistry, ClusterFigures
from .combiners import INT_KEY_FLOAT_SUM

DAMPING = 0.85

MAP_SOURCE = r'''
int main()
{
    char tok[24], *line;
    size_t nbytes = 10000;
    double v, share;
    int dst[32];
    int read, lp, off, k, n, i, first;
    line = (char*) malloc(nbytes*sizeof(char));
    #pragma mapreduce mapper key(k) value(v) kvpairs(34)
    while( (read = getline(&line, &nbytes, stdin)) != -1) {
        off = 0;
        first = 1;
        k = 0;
        n = 0;
        while( (lp = getWord(line, off, tok, read, 24)) != -1) {
            off += lp;
            if( first ) {
                k = atoi(tok);       /* leading token is the source id */
                first = 0;
            } else if( n < 32 ) {
                dst[n] = atoi(tok);
                n++;
            }
        }
        if( first == 0 ) {
            v = 0.0;                 /* dangling nodes keep a row */
            printf("%d\t%f\n", k, v);
            if( n > 0 ) {
                share = 1.0 / n;
                for(i = 0; i < n; i++) {
                    k = dst[i];
                    v = share;
                    printf("%d\t%f\n", k, v);
                }
            }
        }
    }
    free(line);
    return 0;
}
'''


def _reference(split_text: str) -> dict[Any, Any]:
    mass: dict[int, float] = defaultdict(float)
    for line in split_text.splitlines():
        parts = line.split()
        if not parts:
            continue
        src = int(parts[0])
        mass[src] += 0.0
        dsts = parts[1:]
        if dsts:
            share = 1.0 / len(dsts)
            for dst in dsts:
                mass[int(dst)] += share
    return {node: (1.0 - DAMPING) + DAMPING * total
            for node, total in mass.items()}


def _reduce(key: Any, values: list[Any]) -> list[tuple[Any, Any]]:
    return [(key, (1.0 - DAMPING) + DAMPING * sum(float(v) for v in values))]


def _generate(records: int, seed: int) -> str:
    return datagen.adjacency(records, seed)


PAGERANK = AppRegistry.register(
    Application(
        name="pagerank",
        short="PR",
        nature="Compute",
        map_source=MAP_SOURCE,
        combine_source=INT_KEY_FLOAT_SUM,
        reduce_source=None,           # damping needs the complete sum
        reduce_py=_reduce,
        pct_map_combine_active=84,
        cluster1=ClusterFigures(reduce_tasks=16, map_tasks=2880, input_gb=420),
        cluster2=ClusterFigures(reduce_tasks=16, map_tasks=768, input_gb=96),
        generate=_generate,
        reference=_reference,
        record_skew=1.4,
    )
)
