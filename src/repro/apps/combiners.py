"""Shared combiner sources.

Most Table 2 apps with a combiner use sum-style aggregation over sorted
KV streams; these templates mirror the paper's Listing 2 structure for
string, int, and float key/value combinations.
"""

STRING_KEY_INT_SUM = r'''
int main()
{
    char word[30], prevWord[30]; prevWord[0] = '\0';
    int count, val, read; count = 0;
    #pragma mapreduce combiner key(prevWord) value(count) \
        keyin(word) valuein(val) keylength(30) vallength(4) \
        firstprivate(prevWord, count)
    {
        while( (read = scanf("%s %d", word, &val)) == 2 ) {
            if(strcmp(word, prevWord) == 0 ) {
                count += val;
            } else {
                if(prevWord[0] != '\0')
                    printf("%s\t%d\n", prevWord, count);
                strcpy(prevWord, word);
                count = val;
            }
        }
        if(prevWord[0] != '\0')
            printf("%s\t%d\n", prevWord, count);
    }
    return 0;
}
'''

INT_KEY_INT_SUM = r'''
int main()
{
    int prevKey, count, key, val, read, have;
    prevKey = 0; count = 0; have = 0;
    #pragma mapreduce combiner key(prevKey) value(count) \
        keyin(key) valuein(val) firstprivate(prevKey, count, have)
    {
        while( (read = scanf("%d %d", &key, &val)) == 2 ) {
            if(have && key == prevKey) {
                count += val;
            } else {
                if(have)
                    printf("%d\t%d\n", prevKey, count);
                prevKey = key;
                count = val;
                have = 1;
            }
        }
        if(have)
            printf("%d\t%d\n", prevKey, count);
    }
    return 0;
}
'''

INT_KEY_FLOAT_SUM = r'''
int main()
{
    int prevKey, key, read, have;
    double total, val;
    prevKey = 0; total = 0.0; have = 0;
    #pragma mapreduce combiner key(prevKey) value(total) \
        keyin(key) valuein(val) firstprivate(prevKey, total, have)
    {
        while( (read = scanf("%d %f", &key, &val)) == 2 ) {
            if(have && key == prevKey) {
                total += val;
            } else {
                if(have)
                    printf("%d\t%f\n", prevKey, total);
                prevKey = key;
                total = val;
                have = 1;
            }
        }
        if(have)
            printf("%d\t%f\n", prevKey, total);
    }
    return 0;
}
'''
