"""Inverted index (II) — classic PUMA-style text workload, IO-intensive.

Builds a word → document-frequency index: input records are
``docId w1 w2 ...``; the map emits <word, docId> for every word, and the
reducer counts *distinct* documents per word. Distinct-counting is not
sum-associative, so Table-2-style partial aggregation does not apply —
like CL, the app ships no combiner, which makes its shuffle volume the
largest of the text apps (every occurrence crosses the wire).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

from . import datagen
from .base import Application, AppRegistry, ClusterFigures

MAP_SOURCE = r'''
int main()
{
    char word[24], *line;
    size_t nbytes = 10000;
    int read, lp, off, doc, first;
    line = (char*) malloc(nbytes*sizeof(char));
    #pragma mapreduce mapper key(word) value(doc) keylength(24) kvpairs(24)
    while( (read = getline(&line, &nbytes, stdin)) != -1) {
        off = 0;
        first = 1;
        doc = 0;
        while( (lp = getWord(line, off, word, read, 24)) != -1) {
            off += lp;
            if( first ) {
                doc = atoi(word);   /* leading token is the doc id */
                first = 0;
            } else {
                printf("%s\t%d\n", word, doc);
            }
        }
    }
    free(line);
    return 0;
}
'''


def _reference(split_text: str) -> dict[Any, Any]:
    postings: dict[str, set[int]] = defaultdict(set)
    for line in split_text.splitlines():
        parts = line.split()
        if len(parts) < 2:
            continue
        doc = int(parts[0])
        for word in parts[1:]:
            postings[word].add(doc)
    return {word: len(docs) for word, docs in postings.items()}


def _reduce(key: Any, values: list[Any]) -> list[tuple[Any, Any]]:
    return [(key, len({int(v) for v in values}))]


def _generate(records: int, seed: int) -> str:
    return datagen.doc_lines(records, seed)


INVERTED_INDEX = AppRegistry.register(
    Application(
        name="inverted_index",
        short="II",
        nature="IO",
        map_source=MAP_SOURCE,
        combine_source=None,          # distinct-count is not sum-associative
        reduce_source=None,
        reduce_py=_reduce,
        pct_map_combine_active=88,
        cluster1=ClusterFigures(reduce_tasks=32, map_tasks=5120, input_gb=780),
        cluster2=ClusterFigures(reduce_tasks=16, map_tasks=960, input_gb=140),
        generate=_generate,
        reference=_reference,
        record_skew=1.5,
    )
)
