"""BlackScholes (BS) — scientific application; the most compute-intensive
benchmark (Table 2: 100% map time; Fig. 5: single-task speedup up to 47×).

European call pricing with 128 iterations per option (paper §7.1),
sweeping the volatility and averaging. Map-only: zero reduce tasks, so
the output is written directly to HDFS — which is why Fig. 6 shows BS
spending 62% of its GPU task in the output write.
"""

from __future__ import annotations

import math
from typing import Any

from . import datagen
from .base import Application, AppRegistry, ClusterFigures

ITERATIONS = 128
_SQRT2 = 1.4142135623730951

MAP_SOURCE = r'''
int main()
{
    char tok[32], *line;
    size_t nbytes = 100000;
    double s, k, t, r, v, d1, d2, price, sum, vol, sq;
    int read, off, lp, id, i, field;
    line = (char*) malloc(nbytes*sizeof(char));
    #pragma mapreduce mapper key(id) value(price) kvpairs(2)
    while( (read = getline(&line, &nbytes, stdin)) != -1) {
        off = 0;
        field = 0;
        id = 0;
        s = 0.0; k = 0.0; t = 0.0; r = 0.0; v = 0.0;
        while( (lp = getWord(line, off, tok, read, 32)) != -1) {
            off += lp;
            if( field == 0 ) id = atoi(tok);
            if( field == 1 ) s = atof(tok);
            if( field == 2 ) k = atof(tok);
            if( field == 3 ) t = atof(tok);
            if( field == 4 ) r = atof(tok);
            if( field == 5 ) v = atof(tok);
            field++;
        }
        if( field >= 6 ) {
            sum = 0.0;
            for(i = 0; i < 128; i++) {
                vol = v + 0.000001 * i;
                sq = vol * sqrt(t);
                d1 = (log(s/k) + (r + 0.5*vol*vol)*t) / sq;
                d2 = d1 - sq;
                price = s*0.5*(1.0+erf(d1/1.4142135623730951))
                    - k*exp(-r*t)*0.5*(1.0+erf(d2/1.4142135623730951));
                sum += price;
            }
            price = sum / 128.0;
            printf("%d\t%f\n", id, price);
        }
    }
    free(line);
    return 0;
}
'''


def price_option(s: float, k: float, t: float, r: float, v: float) -> float:
    """Reference implementation of the map's 128-iteration pricing."""
    total = 0.0
    for i in range(ITERATIONS):
        vol = v + 1e-6 * i
        sq = vol * math.sqrt(t)
        d1 = (math.log(s / k) + (r + 0.5 * vol * vol) * t) / sq
        d2 = d1 - sq
        call = s * 0.5 * (1.0 + math.erf(d1 / _SQRT2)) \
            - k * math.exp(-r * t) * 0.5 * (1.0 + math.erf(d2 / _SQRT2))
        total += call
    return total / ITERATIONS


def _reference(split_text: str) -> dict[Any, Any]:
    prices: dict[int, float] = {}
    for line in split_text.splitlines():
        parts = line.split()
        if len(parts) < 6:
            continue
        oid = int(parts[0])
        s, k, t, r, v = (float(x) for x in parts[1:6])
        prices[oid] = price_option(s, k, t, r, v)
    return prices


def _generate(records: int, seed: int) -> str:
    return datagen.option_chain(records, seed)


BLACKSCHOLES = AppRegistry.register(
    Application(
        name="blackscholes",
        short="BS",
        nature="Compute",
        map_source=MAP_SOURCE,
        combine_source=None,          # map-only job
        reduce_py=None,
        pct_map_combine_active=100,
        cluster1=ClusterFigures(reduce_tasks=0, map_tasks=3600, input_gb=890),
        cluster2=ClusterFigures(reduce_tasks=0, map_tasks=5120, input_gb=210),
        generate=_generate,
        reference=_reference,
        record_skew=1.0,
    )
)
