"""Application model: sources, metadata (Table 2), and derived artifacts."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable

from ..compiler import TranslationResult, translate_cached
from ..config import GB, OptimizationFlags
from ..errors import ConfigError
from ..minic import cast as A
from ..minic import parse
from ..minic.interpreter import ExecCounters, run_filter


@dataclass(frozen=True)
class ClusterFigures:
    """Per-cluster evaluation parameters from Table 2. ``None`` marks the
    NA entries (KM does not run on Cluster2)."""

    reduce_tasks: int
    map_tasks: int | None
    input_gb: float | None


@dataclass
class Application:
    """One benchmark: sources + Table 2 metadata + oracle."""

    name: str
    short: str                      # the paper's two-letter tag (GR, WC, ...)
    nature: str                     # "IO" | "Compute"
    map_source: str = ""
    combine_source: str | None = None
    #: The reduce function as a mini-C Streaming filter. Reducers always
    #: run on CPUs (paper §3.1: 'HeteroDoop provides no directives for
    #: reduce functions and executes them on the CPUs only').
    reduce_source: str | None = None
    #: Pure-Python reduce, used as the oracle (and the fallback when no
    #: mini-C reducer exists).
    reduce_py: Callable[[Any, list[Any]], list[tuple[Any, Any]]] | None = None
    pct_map_combine_active: int = 0  # Table 2 '%Exec. Time Map+Combine Active'
    cluster1: ClusterFigures | None = None
    cluster2: ClusterFigures | None = None
    min_gpu_mem: int = 0            # device floor; KM exceeds Cluster2's GPUs
    generate: Callable[[int, int], str] | None = None  # (records, seed) -> text
    reference: Callable[[str], dict[Any, Any]] | None = None  # oracle
    record_skew: float = 1.0        # record-length skew (drives stealing gains)

    def __post_init__(self) -> None:
        if self.nature not in ("IO", "Compute"):
            raise ConfigError(f"nature must be IO or Compute, not {self.nature!r}")

    @property
    def has_combiner(self) -> bool:
        return self.combine_source is not None

    @property
    def map_only(self) -> bool:
        c1 = self.cluster1
        return bool(c1 and c1.reduce_tasks == 0)

    # -- parsed/translated artifacts (cached per optimization setting) -------

    def map_program(self) -> A.Program:
        return _parse_cached(self.map_source)

    def combine_program(self) -> A.Program | None:
        if self.combine_source is None:
            return None
        return _parse_cached(self.combine_source)

    def translate_map(self, opt: OptimizationFlags | None = None) -> TranslationResult:
        return translate_cached(self.map_program(), opt=opt, map_only=self.map_only)

    def translate_combine(
        self, opt: OptimizationFlags | None = None
    ) -> TranslationResult | None:
        prog = self.combine_program()
        if prog is None:
            return None
        return translate_cached(prog, opt=opt)

    # -- CPU (Hadoop Streaming) path -----------------------------------------

    def cpu_map(self, split_text: str) -> tuple[str, ExecCounters]:
        """Run the map filter exactly as Hadoop Streaming would."""
        return run_filter(self.map_program(), split_text)

    def cpu_combine(self, kv_text: str) -> tuple[str, ExecCounters]:
        prog = self.combine_program()
        if prog is None:
            raise ConfigError(f"{self.name} has no combiner")
        return run_filter(prog, kv_text)

    def reduce_program(self) -> A.Program | None:
        if self.reduce_source is None:
            return None
        return _parse_cached(self.reduce_source)

    def cpu_reduce(self, kv_text: str) -> tuple[str, ExecCounters]:
        """Run the reduce filter over one partition's sorted KV lines."""
        prog = self.reduce_program()
        if prog is None:
            raise ConfigError(f"{self.name} has no mini-C reducer")
        return run_filter(prog, kv_text)

    def reduce(self, key: Any, values: list[Any]) -> list[tuple[Any, Any]]:
        """Apply the reduce function (CPU-only in HeteroDoop, §3.1)."""
        if self.reduce_py is None:
            return [(key, v) for v in values]
        return self.reduce_py(key, values)

    def figures_for(self, cluster_name: str) -> ClusterFigures:
        figures = self.cluster1 if cluster_name == "Cluster1" else self.cluster2
        if figures is None or figures.map_tasks is None:
            raise ConfigError(
                f"{self.short} has no Table 2 entry for {cluster_name} "
                "(the paper marks it NA)"
            )
        return figures


@lru_cache(maxsize=64)
def _parse_cached(source: str) -> A.Program:
    return parse(source)


class AppRegistry:
    """Global registry the benchmark modules populate on import."""

    _apps: dict[str, Application] = {}

    @classmethod
    def register(cls, app: Application) -> Application:
        key = app.short.upper()
        if key in cls._apps:
            raise ConfigError(f"duplicate app registration {key}")
        cls._apps[key] = app
        return app

    @classmethod
    def get(cls, short: str) -> Application:
        try:
            return cls._apps[short.upper()]
        except KeyError:
            raise ConfigError(
                f"unknown app {short!r}; known: {sorted(cls._apps)}"
            ) from None

    @classmethod
    def all(cls) -> list[Application]:
        return list(cls._apps.values())


def get_app(short: str) -> Application:
    return AppRegistry.get(short)


def all_apps() -> list[Application]:
    return AppRegistry.all()
