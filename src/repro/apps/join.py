"""Relational join (RJ) — two-table equi-join by counting, IO-intensive.

Input rows carry a table tag: ``R key payload`` or ``S key payload``.
The map emits <key, 1> for an R row and <key, 10000> for an S row, so a
plain integer sum encodes both per-key cardinalities at once
(``nR = sum % 10000``, ``nS = sum // 10000``); the reducer decodes the
sum and emits the join cardinality ``nR * nS`` — the standard
count-based repartition join. The weight encoding keeps the combiner a
stock integer sum, so GPU partial aggregation applies unchanged; datagen
keeps every per-key R count far below the 10000 radix.
"""

from __future__ import annotations

from collections import Counter
from typing import Any

from . import datagen
from .base import Application, AppRegistry, ClusterFigures
from .combiners import INT_KEY_INT_SUM

S_RADIX = 10000

MAP_SOURCE = r'''
int main()
{
    char tag[8], tok[24], *line;
    size_t nbytes = 10000;
    int read, lp, off, key, w;
    line = (char*) malloc(nbytes*sizeof(char));
    #pragma mapreduce mapper key(key) value(w) kvpairs(2)
    while( (read = getline(&line, &nbytes, stdin)) != -1) {
        off = 0;
        lp = getWord(line, off, tag, read, 8);
        if( lp != -1 ) {
            off += lp;
            lp = getWord(line, off, tok, read, 24);
            if( lp != -1 ) {
                key = atoi(tok);
                if( tag[0] == 'R' ) {
                    w = 1;
                } else {
                    w = 10000;
                }
                printf("%d\t%d\n", key, w);
            }
        }
    }
    free(line);
    return 0;
}
'''


def _reference(split_text: str) -> dict[Any, Any]:
    r_rows: Counter[int] = Counter()
    s_rows: Counter[int] = Counter()
    for line in split_text.splitlines():
        parts = line.split()
        if len(parts) < 2:
            continue
        key = int(parts[1])
        if parts[0] == "R":
            r_rows[key] += 1
        else:
            s_rows[key] += 1
    return {
        key: r_rows[key] * s_rows[key]
        for key in r_rows.keys() | s_rows.keys()
    }


def _reduce(key: Any, values: list[Any]) -> list[tuple[Any, Any]]:
    total = sum(int(v) for v in values)
    return [(key, (total % S_RADIX) * (total // S_RADIX))]


def _generate(records: int, seed: int) -> str:
    return datagen.join_rows(records, seed)


JOIN = AppRegistry.register(
    Application(
        name="join",
        short="RJ",
        nature="IO",
        map_source=MAP_SOURCE,
        combine_source=INT_KEY_INT_SUM,
        reduce_source=None,           # the decode step needs the full sum
        reduce_py=_reduce,
        pct_map_combine_active=89,
        cluster1=ClusterFigures(reduce_tasks=16, map_tasks=4480, input_gb=690),
        cluster2=ClusterFigures(reduce_tasks=16, map_tasks=896, input_gb=120),
        generate=_generate,
        reference=_reference,
        record_skew=1.0,
    )
)
