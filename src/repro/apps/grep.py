"""Grep (GR) — PUMA benchmark; the most IO-intensive app (Table 2: 69%).

Counts lines containing a fixed pattern: the map emits <pattern, 1> on a
match; combiner and reducer sum. Very few KV pairs per input byte, so the
task is dominated by reading the split.
"""

from __future__ import annotations

from typing import Any

from . import datagen
from .base import Application, AppRegistry, ClusterFigures
from .combiners import STRING_KEY_INT_SUM

#: The fixed search pattern compiled into the job (PUMA grep takes a
#: regex; we use a literal-substring grep).
PATTERN = "data"

MAP_SOURCE = r'''
int main()
{
    char pattern[16], *line;
    size_t nbytes = 10000;
    int read, one;
    strcpy(pattern, "data");
    line = (char*) malloc(nbytes*sizeof(char));
    #pragma mapreduce mapper key(pattern) value(one) keylength(16) \
        kvpairs(2) sharedRO(pattern)
    while( (read = getline(&line, &nbytes, stdin)) != -1) {
        one = 1;
        if( strstr(line, pattern) != NULL )
            printf("%s\t%d\n", pattern, one);
    }
    free(line);
    return 0;
}
'''


def _generate(records: int, seed: int) -> str:
    # Zipf text whose rare-word tail contains 'data…' tokens, so a realistic
    # minority of lines match the pattern.
    return datagen.zipf_text(records, seed, words_per_line=(8, 24), vocab_size=600)


def _reference(split_text: str) -> dict[Any, Any]:
    matches = sum(1 for line in split_text.splitlines() if PATTERN in line)
    return {PATTERN: matches} if matches else {}


def _reduce(key: Any, values: list[Any]) -> list[tuple[Any, Any]]:
    return [(key, sum(int(v) for v in values))]


GREP = AppRegistry.register(
    Application(
        name="grep",
        short="GR",
        nature="IO",
        map_source=MAP_SOURCE,
        combine_source=STRING_KEY_INT_SUM,
        reduce_source=STRING_KEY_INT_SUM,
        reduce_py=_reduce,
        pct_map_combine_active=69,
        cluster1=ClusterFigures(reduce_tasks=16, map_tasks=7632, input_gb=902),
        cluster2=ClusterFigures(reduce_tasks=16, map_tasks=2880, input_gb=340),
        generate=_generate,
        reference=_reference,
        record_skew=1.5,
    )
)
