"""Kmeans (KM) — PUMA benchmark, compute-intensive, no combiner.

One clustering iteration: each point is assigned to its nearest centroid
(the centroid table is read-only → texture memory, Fig. 7a) and the map
emits <centroidId, coordinateSum> per point; the reducer averages to
produce the next iteration's 1-D centroid statistic. Records pack a
variable number of points, so per-record work is skewed — the record-
stealing showcase (paper §4.1).

KM is absent from Cluster2's Fig. 4b: 'the memory requirement exceeds the
capacity of Cluster2' — modelled by ``min_gpu_mem`` larger than an
M2090's 6 GB.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Any

from ..config import GB
from . import datagen
from .base import Application, AppRegistry, ClusterFigures
from .combiners import INT_KEY_FLOAT_SUM

K = 16
DIMS = 8

MAP_SOURCE = r'''
int main()
{
    char tok[32], *line;
    size_t nbytes = 100000;
    double cent[128];
    double pt[8];
    double dist, best, diff, csum;
    int read, off, lp, d, c, k, bestc;
    line = (char*) malloc(nbytes*sizeof(char));
    for(c = 0; c < 16; c++) {
        for(d = 0; d < 8; d++) {
            cent[c*8 + d] = 10.0*sin(1.7*c + 0.9*d) + 3.0*cos(0.3*c*d);
        }
    }
    #pragma mapreduce mapper key(bestc) value(csum) kvpairs(16) \
        texture(cent)
    while( (read = getline(&line, &nbytes, stdin)) != -1) {
        off = 0;
        d = 0;
        while( (lp = getWord(line, off, tok, read, 32)) != -1) {
            off += lp;
            pt[d] = atof(tok);
            d++;
            if( d == 8 ) {
                best = 1.0e30;
                bestc = 0;
                for(c = 0; c < 16; c++) {
                    dist = 0.0;
                    for(k = 0; k < 8; k++) {
                        diff = pt[k] - cent[c*8 + k];
                        dist += diff*diff;
                    }
                    if( dist < best ) {
                        best = dist;
                        bestc = c;
                    }
                }
                csum = 0.0;
                for(k = 0; k < 8; k++) {
                    csum += pt[k];
                }
                printf("%d\t%f\n", bestc, csum);
                d = 0;
            }
        }
    }
    free(line);
    return 0;
}
'''


def centroids() -> list[list[float]]:
    return [
        [datagen.cluster_center(c, d, K) for d in range(DIMS)]
        for c in range(K)
    ]


def _assign(point: list[float], cents: list[list[float]]) -> int:
    best, bestc = math.inf, 0
    for c, cent in enumerate(cents):
        dist = sum((p - q) ** 2 for p, q in zip(point, cent))
        if dist < best:
            best, bestc = dist, c
    return bestc


def _reference(split_text: str) -> dict[Any, Any]:
    cents = centroids()
    sums: dict[int, float] = defaultdict(float)
    for line in split_text.splitlines():
        values = [float(tok) for tok in line.split()]
        for i in range(0, len(values) - DIMS + 1, DIMS):
            point = values[i : i + DIMS]
            sums[_assign(point, cents)] += sum(point)
    return dict(sums)


def _reduce(key: Any, values: list[Any]) -> list[tuple[Any, Any]]:
    total = sum(float(v) for v in values)
    return [(key, total)]


def _generate(records: int, seed: int) -> str:
    return datagen.point_stream(records, seed)


KMEANS = AppRegistry.register(
    Application(
        name="kmeans",
        short="KM",
        nature="Compute",
        map_source=MAP_SOURCE,
        combine_source=None,           # Table 2: no combiner
        reduce_source=INT_KEY_FLOAT_SUM,
        reduce_py=_reduce,
        pct_map_combine_active=89,
        cluster1=ClusterFigures(reduce_tasks=16, map_tasks=4800, input_gb=923),
        cluster2=ClusterFigures(reduce_tasks=16, map_tasks=None, input_gb=None),
        min_gpu_mem=8 * GB,            # exceeds an M2090 (6 GB): NA on Cluster2
        generate=_generate,
        reference=_reference,
        record_skew=5.0,
    )
)
