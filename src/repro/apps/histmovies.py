"""Histmovies (HS) — PUMA benchmark, IO-intensive.

Averages the review ratings of each movie and bins the average (paper
§7.1). Input records are ``movieId: r1 r2 r3 ...``; the map emits
<bin, 1> once per movie (few KV pairs per record → IO-bound); combiner
and reducer sum bin populations. Bins are the average rating doubled and
truncated, i.e. half-star resolution (bin = floor(2·avg) ∈ [2, 10]).
"""

from __future__ import annotations

from collections import Counter
from typing import Any

from . import datagen
from .base import Application, AppRegistry, ClusterFigures
from .combiners import INT_KEY_INT_SUM

MAP_SOURCE = r'''
int main()
{
    char tok[32], *line;
    size_t nbytes = 100000;
    int read, off, lp, n, sum, bin, one, first;
    line = (char*) malloc(nbytes*sizeof(char));
    #pragma mapreduce mapper key(bin) value(one) kvpairs(2)
    while( (read = getline(&line, &nbytes, stdin)) != -1) {
        off = 0;
        n = 0;
        sum = 0;
        first = 1;
        one = 1;
        while( (lp = getWord(line, off, tok, read, 32)) != -1) {
            off += lp;
            if( first ) {
                first = 0;       /* skip the movieId field */
            } else {
                sum += atoi(tok);
                n++;
            }
        }
        if( n > 0 ) {
            bin = (2 * sum) / n;
            printf("%d\t%d\n", bin, one);
        }
    }
    free(line);
    return 0;
}
'''


def _reference(split_text: str) -> dict[Any, Any]:
    bins: Counter[int] = Counter()
    for line in split_text.splitlines():
        parts = line.split()
        if len(parts) < 2:
            continue
        ratings = [int(tok) for tok in parts[1:]]
        bins[(2 * sum(ratings)) // len(ratings)] += 1
    return dict(bins)


def _reduce(key: Any, values: list[Any]) -> list[tuple[Any, Any]]:
    return [(key, sum(int(v) for v in values))]


def _generate(records: int, seed: int) -> str:
    return datagen.movie_ratings(records, seed)


HISTMOVIES = AppRegistry.register(
    Application(
        name="histmovies",
        short="HS",
        nature="IO",
        map_source=MAP_SOURCE,
        combine_source=INT_KEY_INT_SUM,
        reduce_source=INT_KEY_INT_SUM,
        reduce_py=_reduce,
        pct_map_combine_active=91,
        cluster1=ClusterFigures(reduce_tasks=8, map_tasks=4800, input_gb=1190),
        cluster2=ClusterFigures(reduce_tasks=8, map_tasks=640, input_gb=159),
        generate=_generate,
        reference=_reference,
        record_skew=4.0,
    )
)
