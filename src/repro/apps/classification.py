"""Classification (CL) — PUMA benchmark, compute-intensive, no combiner.

'Similar to kmeans; however, there is no clustering involved. The
application ends after classifying the input dataset to respective
centroids in a single iteration' (paper §7.1). One fixed-dimension point
per record; the map emits <centroidId, 1>; the reducer sums populations.
The centroid table is read-only → texture memory (Fig. 7a).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Any

from . import datagen
from .base import Application, AppRegistry, ClusterFigures
from .combiners import INT_KEY_INT_SUM

K = 24
DIMS = 8

MAP_SOURCE = r'''
int main()
{
    char tok[32], *line;
    size_t nbytes = 100000;
    double cent[192];
    double pt[8];
    double dist, best, diff;
    int read, off, lp, d, c, k, bestc, one;
    line = (char*) malloc(nbytes*sizeof(char));
    for(c = 0; c < 24; c++) {
        for(d = 0; d < 8; d++) {
            cent[c*8 + d] = 10.0*sin(1.7*c + 0.9*d) + 3.0*cos(0.3*c*d);
        }
    }
    #pragma mapreduce mapper key(bestc) value(one) kvpairs(2) \
        texture(cent)
    while( (read = getline(&line, &nbytes, stdin)) != -1) {
        off = 0;
        one = 1;
        for(d = 0; d < 8; d++) {
            lp = getWord(line, off, tok, read, 32);
            if( lp == -1 )
                break;
            off += lp;
            pt[d] = atof(tok);
        }
        if( d == 8 ) {
            best = 1.0e30;
            bestc = 0;
            for(c = 0; c < 24; c++) {
                dist = 0.0;
                for(k = 0; k < 8; k++) {
                    diff = pt[k] - cent[c*8 + k];
                    dist += diff*diff;
                }
                if( dist < best ) {
                    best = dist;
                    bestc = c;
                }
            }
            printf("%d\t%d\n", bestc, one);
        }
    }
    free(line);
    return 0;
}
'''


def _assign(point: list[float]) -> int:
    cents = [
        [datagen.cluster_center(c, d, K) for d in range(DIMS)] for c in range(K)
    ]
    best, bestc = math.inf, 0
    for c, cent in enumerate(cents):
        dist = sum((p - q) ** 2 for p, q in zip(point, cent))
        if dist < best:
            best, bestc = dist, c
    return bestc


def _reference(split_text: str) -> dict[Any, Any]:
    counts: Counter[int] = Counter()
    for line in split_text.splitlines():
        values = [float(tok) for tok in line.split()]
        if len(values) >= DIMS:
            counts[_assign(values[:DIMS])] += 1
    return dict(counts)


def _reduce(key: Any, values: list[Any]) -> list[tuple[Any, Any]]:
    return [(key, sum(int(v) for v in values))]


def _generate(records: int, seed: int) -> str:
    return datagen.point_cloud(records, seed, clusters=K)


CLASSIFICATION = AppRegistry.register(
    Application(
        name="classification",
        short="CL",
        nature="Compute",
        map_source=MAP_SOURCE,
        combine_source=None,           # Table 2: no combiner
        reduce_source=INT_KEY_INT_SUM,
        reduce_py=_reduce,
        pct_map_combine_active=92,
        cluster1=ClusterFigures(reduce_tasks=16, map_tasks=4800, input_gb=923),
        cluster2=ClusterFigures(reduce_tasks=16, map_tasks=3200, input_gb=72),
        generate=_generate,
        reference=_reference,
        record_skew=1.1,
    )
)
