"""Terasort-style global sort (TS) — sort-dominated, IO-intensive.

Input records lead with a zero-padded decimal sort key; the map emits
<key, 1> and the combiner/reducer sum duplicates, so the job's real work
is the framework's sort/shuffle of mostly-unique wide keys — the
terasort profile (like WC's Fig. 6 sort dominance, but with near-zero
combine payoff). Zero-padded keys deliberately straddle the streaming
type-coercion boundary: ``00421337`` stays a text key while ``42133700``
becomes an int, so every engine's numeric-before-text comparator gets
exercised on realistic mixed runs.
"""

from __future__ import annotations

from collections import Counter
from typing import Any

from . import datagen
from .base import Application, AppRegistry, ClusterFigures
from .combiners import STRING_KEY_INT_SUM
from ..kvstore.coerce import coerce_key

MAP_SOURCE = r'''
int main()
{
    char key[16], *line;
    size_t nbytes = 10000;
    int read, lp, one;
    line = (char*) malloc(nbytes*sizeof(char));
    #pragma mapreduce mapper key(key) value(one) keylength(16) kvpairs(2)
    while( (read = getline(&line, &nbytes, stdin)) != -1) {
        one = 1;
        lp = getWord(line, 0, key, read, 16);
        if( lp != -1 )
            printf("%s\t%d\n", key, one);
    }
    free(line);
    return 0;
}
'''


def _reference(split_text: str) -> dict[Any, Any]:
    counts: Counter[Any] = Counter()
    for line in split_text.splitlines():
        parts = line.split()
        if parts:
            # Same coercion the streaming paths apply, so leading-zero
            # keys stay text and zero-free keys become ints.
            counts[coerce_key(parts[0])] += 1
    return dict(counts)


def _reduce(key: Any, values: list[Any]) -> list[tuple[Any, Any]]:
    return [(key, sum(int(v) for v in values))]


def _generate(records: int, seed: int) -> str:
    return datagen.sort_records(records, seed)


TERASORT = AppRegistry.register(
    Application(
        name="terasort",
        short="TS",
        nature="IO",
        map_source=MAP_SOURCE,
        combine_source=STRING_KEY_INT_SUM,
        reduce_source=STRING_KEY_INT_SUM,
        reduce_py=_reduce,
        pct_map_combine_active=90,
        cluster1=ClusterFigures(reduce_tasks=48, map_tasks=6144, input_gb=1000),
        cluster2=ClusterFigures(reduce_tasks=32, map_tasks=1152, input_gb=160),
        generate=_generate,
        reference=_reference,
        record_skew=1.0,
    )
)
