"""The eight evaluation benchmarks (paper Table 2).

Six come from the PUMA suite (grep, wordcount, kmeans, classification,
histmovies, histratings) and two are scientific applications
(blackScholes, linear regression). Each ships:

* directive-annotated mini-C map (and, where Table 2 says so, combine)
  sources — single-source programs runnable on both the CPU path and,
  after translation, the GPU simulator,
* a seeded synthetic data generator shaped like the original input
  (Zipf text, Netflix-style rating records, Gaussian point clouds,
  option parameter tuples),
* a pure-Python reference implementation (the oracle for tests).
"""

from .base import Application, AppRegistry, get_app, all_apps
from . import (  # noqa: F401  (registration side effects)
    grep,
    wordcount,
    histmovies,
    histratings,
    kmeans,
    classification,
    linear_regression,
    blackscholes,
)

__all__ = ["Application", "AppRegistry", "get_app", "all_apps"]
