"""The evaluation benchmarks: paper Table 2 plus registry extensions.

The paper's eight: six from the PUMA suite (grep, wordcount, kmeans,
classification, histmovies, histratings) and two scientific applications
(blackScholes, linear regression). Four more ride the scenario registry
(inverted index, relational join, terasort-style sort, PageRank) to
widen sweep coverage beyond Table 2. Each ships:

* directive-annotated mini-C map (and, where Table 2 says so, combine)
  sources — single-source programs runnable on both the CPU path and,
  after translation, the GPU simulator,
* a seeded synthetic data generator shaped like the original input
  (Zipf text, Netflix-style rating records, Gaussian point clouds,
  option parameter tuples),
* a pure-Python reference implementation (the oracle for tests).
"""

from .base import Application, AppRegistry, get_app, all_apps
from . import (  # noqa: F401  (registration side effects)
    grep,
    wordcount,
    histmovies,
    histratings,
    kmeans,
    classification,
    linear_regression,
    blackscholes,
    inverted_index,
    join,
    terasort,
    pagerank,
)

__all__ = ["Application", "AppRegistry", "get_app", "all_apps"]
