"""Linear Regression (LR) — scientific application, compute-intensive.

Curve fitting via the normal equations, the standard MapReduce
formulation: each input row ``y x1 .. x12`` contributes every
cross-product of the Gram matrix upper triangle (xi·xj, i ≤ j) plus the
X^T·y vector (xj·y) as <coefficientId, partialProduct> pairs — 90 pairs
per record, which is what makes the combine phase substantial (paper
Fig. 6: 'HR and LR spend substantial execution time in the combine
operation'). Combiner and reducer sum partials per coefficient.

Coefficient key encoding: ``i*13 + j`` for Gram entry (i,j), and
``156 + j`` for the X^T·y entries.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

from . import datagen
from .base import Application, AppRegistry, ClusterFigures
from .combiners import INT_KEY_FLOAT_SUM

REGRESSORS = 12

MAP_SOURCE = r'''
int main()
{
    char tok[32], *line;
    size_t nbytes = 100000;
    double x[12];
    double y, prod;
    int read, off, lp, j, i, coef, n;
    line = (char*) malloc(nbytes*sizeof(char));
    #pragma mapreduce mapper key(coef) value(prod) kvpairs(91)
    while( (read = getline(&line, &nbytes, stdin)) != -1) {
        off = 0;
        n = -1;
        y = 0.0;
        while( (lp = getWord(line, off, tok, read, 32)) != -1) {
            off += lp;
            if( n == -1 ) {
                y = atof(tok);
            } else if( n < 12 ) {
                x[n] = atof(tok);
            }
            n++;
        }
        if( n >= 12 ) {
            for(i = 0; i < 12; i++) {
                for(j = i; j < 12; j++) {
                    prod = x[i] * x[j];
                    coef = i*13 + j;
                    printf("%d\t%f\n", coef, prod);
                }
            }
            for(j = 0; j < 12; j++) {
                prod = x[j] * y;
                coef = 156 + j;
                printf("%d\t%f\n", coef, prod);
            }
        }
    }
    free(line);
    return 0;
}
'''


def _reference(split_text: str) -> dict[Any, Any]:
    sums: dict[int, float] = defaultdict(float)
    for line in split_text.splitlines():
        parts = [float(tok) for tok in line.split()]
        if len(parts) < REGRESSORS + 1:
            continue
        y, xs = parts[0], parts[1 : REGRESSORS + 1]
        for i in range(REGRESSORS):
            for j in range(i, REGRESSORS):
                sums[i * 13 + j] += xs[i] * xs[j]
        for j in range(REGRESSORS):
            sums[156 + j] += xs[j] * y
    return dict(sums)


def _reduce(key: Any, values: list[Any]) -> list[tuple[Any, Any]]:
    return [(key, sum(float(v) for v in values))]


def _generate(records: int, seed: int) -> str:
    return datagen.regression_rows(records, seed, regressors=REGRESSORS)


LINEAR_REGRESSION = AppRegistry.register(
    Application(
        name="linear_regression",
        short="LR",
        nature="Compute",
        map_source=MAP_SOURCE,
        combine_source=INT_KEY_FLOAT_SUM,
        reduce_source=INT_KEY_FLOAT_SUM,
        reduce_py=_reduce,
        pct_map_combine_active=86,
        cluster1=ClusterFigures(reduce_tasks=16, map_tasks=2560, input_gb=714),
        cluster2=ClusterFigures(reduce_tasks=16, map_tasks=3840, input_gb=356),
        generate=_generate,
        reference=_reference,
        record_skew=1.0,
    )
)
