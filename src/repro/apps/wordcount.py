"""Wordcount (WC) — the paper's running example (Listings 1–2).

IO-intensive. Emits <word, 1> per word; combiner and reducer sum counts.
Long string keys make the sort phase dominant on the GPU (paper Fig. 6:
'Wordcount shows an interesting case where most of the execution time is
spent in sorting since it emits many long-length keys').
"""

from __future__ import annotations

from collections import Counter
from typing import Any

from . import datagen
from .base import Application, AppRegistry, ClusterFigures
from .combiners import STRING_KEY_INT_SUM

MAP_SOURCE = r'''
int main()
{
    char word[30], *line;
    size_t nbytes = 10000;
    int read, linePtr, offset, one;
    line = (char*) malloc(nbytes*sizeof(char));
    #pragma mapreduce mapper key(word) value(one) keylength(30) kvpairs(20)
    while( (read = getline(&line, &nbytes, stdin)) != -1) {
        linePtr = 0;
        offset = 0;
        one = 1;
        while( (linePtr = getWord(line, offset, word, read, 30)) != -1) {
            printf("%s\t%d\n", word, one);
            offset += linePtr;
        }
    }
    free(line);
    return 0;
}
'''


def _reference(split_text: str) -> dict[Any, Any]:
    counts: Counter[str] = Counter()
    for line in split_text.splitlines():
        counts.update(line.split())
    return dict(counts)


def _reduce(key: Any, values: list[Any]) -> list[tuple[Any, Any]]:
    return [(key, sum(int(v) for v in values))]


def _generate(records: int, seed: int) -> str:
    return datagen.zipf_text(records, seed)


WORDCOUNT = AppRegistry.register(
    Application(
        name="wordcount",
        short="WC",
        nature="IO",
        map_source=MAP_SOURCE,
        combine_source=STRING_KEY_INT_SUM,
        reduce_source=STRING_KEY_INT_SUM,
        reduce_py=_reduce,
        pct_map_combine_active=91,
        cluster1=ClusterFigures(reduce_tasks=48, map_tasks=5760, input_gb=844),
        cluster2=ClusterFigures(reduce_tasks=32, map_tasks=1024, input_gb=151),
        generate=_generate,
        reference=_reference,
        record_skew=1.6,
    )
)
