#!/usr/bin/env python3
"""Tail scheduling, from the Fig. 3 toy to a full cluster.

First replays the paper's Fig. 3 example (19 tasks, 2 CPU slots, a GPU
that is 6x faster) and prints both schedules; then sweeps the GPU
speedup on a 48-node cluster simulation to show where tail scheduling
pays off (taskTail exceeding the per-node slot count) and where it is
neutral (the paper's LR-on-Cluster1 case).

Run:  python examples/tail_scheduling.py
"""

from repro.config import CLUSTER1
from repro.experiments.figures import fig3
from repro.hadoop import ClusterSimulator, JobConf
from repro.scheduling import CpuOnlyPolicy, GpuFirstPolicy, TailPolicy


def show_schedule(title, schedule) -> None:
    print(f"  {title}:")
    by_slot: dict[str, list[str]] = {}
    for task, slot, start, end in schedule:
        by_slot.setdefault(slot, []).append(f"{task}@{start:.2f}")
    for slot in sorted(by_slot):
        print(f"    {slot:5s}: {' '.join(by_slot[slot])}")
    print(f"    makespan = {max(end for *_x, end in schedule):.2f} CPU-task units")


def main() -> None:
    print("=== Fig. 3: the key idea ===")
    result = fig3()
    show_schedule("GPU-first", result.gpu_first_schedule)
    show_schedule("Tail scheduling", result.tail_schedule)
    gain = result.gpu_first_makespan / result.tail_makespan
    print(f"  tail scheduling is {gain:.2f}x faster on the toy example\n")

    print("=== Cluster-scale sweep (4800 maps, 48 nodes, 1 GPU each) ===")
    print(f"{'GPU speedup':>12s} {'cpu-only':>10s} {'gpu-first':>10s} "
          f"{'tail':>10s} {'forced':>7s}")
    for speedup in (2, 5, 10, 20, 30, 47):
        job = JobConf(
            name=f"s{speedup}",
            num_map_tasks=4800,
            num_reduce_tasks=16,
            cluster=CLUSTER1,
            cpu_task_seconds=60.0,
            gpu_task_seconds=60.0 / speedup,
        )
        base = ClusterSimulator(job, CpuOnlyPolicy()).run()
        gf = ClusterSimulator(job, GpuFirstPolicy()).run()
        tail = ClusterSimulator(job, TailPolicy()).run()
        print(f"{speedup:>11}x {base.job_seconds:>9.0f}s "
              f"{gf.job_seconds:>9.0f}s {tail.job_seconds:>9.0f}s "
              f"{tail.forced_gpu_tasks:>7d}")
    print("\nForcing only engages once taskTail (numGPUs x speedup) rivals")
    print("the 20 CPU slots per node — which is why the paper sees tail")
    print("gains for BS/CL on Cluster1 but none for LR.")


if __name__ == "__main__":
    main()
