#!/usr/bin/env python3
"""Fault tolerance, both layers (paper §5.1):

1. the per-node GPU driver contains a task failure, reports it to the
   TaskTracker, revives the device, and keeps serving tasks;
2. the JobTracker reschedules failed attempts cluster-wide until the job
   completes — demonstrated with injected task failures, with and
   without speculative execution rescuing stragglers on slow nodes.

Run:  python examples/fault_tolerance.py
"""

from repro.apps import get_app
from repro.config import CLUSTER1
from repro.costmodel.io import IoModel
from repro.errors import GpuError
from repro.gpu.device import GpuDevice
from repro.hadoop import ClusterSimulator, JobConf
from repro.hadoop.simulate import TaskDurationModel
from repro.runtime.gpu_driver import GpuDriver
from repro.runtime.gpu_task import GpuTaskRunner
from repro.scheduling import CpuOnlyPolicy, GpuFirstPolicy


def driver_demo() -> None:
    print("=== GPU driver: contain, revive, continue (§5.1) ===")
    app = get_app("WC")
    device = GpuDevice(CLUSTER1.gpu)
    driver = GpuDriver([device])
    runner = GpuTaskRunner(app.translate_map(), app.translate_combine(),
                           device, IoModel.for_cluster(CLUSTER1),
                           num_reducers=4)
    split = app.generate(150, seed=3).encode()

    ok = driver.run_task("task-1", lambda dev: runner.run(split))
    print(f"  task-1: ok={ok.succeeded}, simulated {ok.seconds * 1e3:.2f} ms")

    def crash(dev):
        dev.memory.malloc(1 << 20, "leak")  # leaks unless the driver revives
        raise GpuError("simulated kernel fault")

    bad = driver.run_task("task-2", crash)
    print(f"  task-2: ok={bad.succeeded} ({bad.error}) -> "
          "reported to the TaskTracker for rescheduling")
    print(f"  device revived: {device.memory.used} bytes leaked, "
          f"driver thread restarts={driver.threads[0].restarts}")

    again = driver.run_task("task-2-retry", lambda dev: runner.run(split))
    print(f"  task-2 retry: ok={again.succeeded} — the GPU kept serving\n")


def cluster_demo() -> None:
    print("=== Cluster: rescheduling + speculation under stragglers ===")
    job = JobConf(name="ft", num_map_tasks=1500, num_reduce_tasks=8,
                  cluster=CLUSTER1, cpu_task_seconds=60.0,
                  gpu_task_seconds=10.0)
    flaky_slow = lambda: TaskDurationModel(  # noqa: E731
        cpu_seconds=60.0, gpu_seconds=10.0, failure_rate=0.03,
        node_speed_factors={n: 4.0 for n in range(4)}, seed=11,
    )
    plain = ClusterSimulator(job, GpuFirstPolicy()).run()
    faulty = ClusterSimulator(job, GpuFirstPolicy(),
                              durations=flaky_slow()).run()
    spec_sim = ClusterSimulator(job, GpuFirstPolicy(),
                                durations=flaky_slow(), speculative=True)
    spec = spec_sim.run()
    print(f"  healthy cluster        : {plain.job_seconds:7.1f} s")
    print(f"  3% failures + 4 slow nodes: {faulty.job_seconds:7.1f} s "
          f"({faulty.failures} attempts rescheduled)")
    print(f"  + speculative execution: {spec.job_seconds:7.1f} s "
          f"({spec_sim.speculative_attempts} backups, "
          f"{spec_sim.wasted_speculation_seconds:.0f} s wasted work)")
    assert spec.job_seconds <= faulty.job_seconds * 1.02


if __name__ == "__main__":
    driver_demo()
    cluster_demo()
