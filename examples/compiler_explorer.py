#!/usr/bin/env python3
"""Compiler explorer: translate every Table 2 benchmark and inspect what
the HeteroDoop source-to-source translator produced — variable
classification (Algorithm 1), vectorization decisions, launch geometry,
KV layout, and the generated kernel text.

Run:  python examples/compiler_explorer.py [APP ...]
      (APP in GR HS WC HR LR KM CL BS; default: WC KM)
"""

import sys

from repro.apps import get_app
from repro.compiler.kernel_ir import VarClass


def explore(short: str) -> None:
    app = get_app(short)
    print("=" * 72)
    print(f"{app.name} ({short}) — {app.nature}-intensive, "
          f"combiner: {'yes' if app.has_combiner else 'no'}"
          f"{', map-only' if app.map_only else ''}")
    print("=" * 72)

    translation = app.translate_map()
    kernel = translation.map_kernel
    print(f"map kernel: key {kernel.key_type} x{kernel.key_length}B, "
          f"value {kernel.value_type} x{kernel.value_length}B, "
          f"vector width {kernel.vector_width}, "
          f"launch {kernel.launch.blocks}x{kernel.launch.threads}, "
          f"kvpairs/record {kernel.kvpairs_per_record}")
    placements = {}
    for var in kernel.variables.values():
        placements.setdefault(var.klass, []).append(var.name)
    for klass in VarClass:
        if klass in placements:
            print(f"  {klass.value:10s}: {', '.join(sorted(placements[klass]))}")
    print()
    print(kernel.source_text)

    combine = app.translate_combine()
    if combine is not None:
        ck = combine.combine_kernel
        print(f"\ncombine kernel: vector width {ck.vector_width}, "
              f"shared memory {ck.shared_mem_bytes} B/block")
        print(ck.source_text)
    print()


def main() -> None:
    apps = sys.argv[1:] or ["WC", "KM"]
    for short in apps:
        explore(short.upper())


if __name__ == "__main__":
    main()
