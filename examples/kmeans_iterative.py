#!/usr/bin/env python3
"""Iterative k-means as multiple MapReduce rounds — the classic Hadoop
pattern the paper's KM benchmark is one round of.

Each round a *new* directive-annotated map source is generated with the
current centroids baked in (real HeteroDoop jobs ship centroids in the
job jar / distributed cache), translated, and executed on the simulated
GPU; the reduce phase produces per-(cluster, dimension) sums and
per-cluster counts, from which the driver computes the next centroids.
Convergence is measured as total centroid movement per round.

Run:  python examples/kmeans_iterative.py
"""

import math
import random

from repro.apps.base import Application, ClusterFigures
from repro.apps.combiners import INT_KEY_FLOAT_SUM
from repro.hadoop.local import LocalJobRunner

K = 4        # clusters
DIMS = 4     # dimensions
# Key encoding: cluster*DIMS + dim for coordinate sums; 1000+cluster for
# point counts.
COUNT_BASE = 1000

_MAP_TEMPLATE = """
int main()
{{
    char tok[32], *line;
    size_t nbytes = 100000;
    double cent[{table}];
    double pt[{dims}];
    double dist, best, diff, coord;
    int read, off, lp, d, c, k, bestc, one, key;
    line = (char*) malloc(nbytes*sizeof(char));
{init}
    #pragma mapreduce mapper key(key) value(coord) kvpairs({kvpairs}) \\
        texture(cent)
    while( (read = getline(&line, &nbytes, stdin)) != -1) {{
        off = 0;
        one = 1;
        for(d = 0; d < {dims}; d++) {{
            lp = getWord(line, off, tok, read, 32);
            if( lp == -1 )
                break;
            off += lp;
            pt[d] = atof(tok);
        }}
        if( d == {dims} ) {{
            best = 1.0e30;
            bestc = 0;
            for(c = 0; c < {k}; c++) {{
                dist = 0.0;
                for(k = 0; k < {dims}; k++) {{
                    diff = pt[k] - cent[c*{dims} + k];
                    dist += diff*diff;
                }}
                if( dist < best ) {{
                    best = dist;
                    bestc = c;
                }}
            }}
            for(d = 0; d < {dims}; d++) {{
                key = bestc*{dims} + d;
                coord = pt[d];
                printf("%d\\t%f\\n", key, coord);
            }}
            key = {count_base} + bestc;
            coord = 1.0;
            printf("%d\\t%f\\n", key, coord);
        }}
    }}
    free(line);
    return 0;
}}
"""


def make_app(centroids: list[list[float]]) -> Application:
    init = "\n".join(
        f"    cent[{c * DIMS + d}] = {centroids[c][d]!r};"
        for c in range(K) for d in range(DIMS)
    )
    source = _MAP_TEMPLATE.format(
        table=K * DIMS, dims=DIMS, k=K, kvpairs=DIMS + 1,
        count_base=COUNT_BASE, init=init,
    )
    return Application(
        name="kmeans-iterative",
        short="KI",
        nature="Compute",
        map_source=source,
        combine_source=INT_KEY_FLOAT_SUM,
        reduce_source=INT_KEY_FLOAT_SUM,
        cluster1=ClusterFigures(reduce_tasks=4, map_tasks=1, input_gb=0),
    )


def generate_points(n: int, true_centers: list[list[float]],
                    seed: int = 3) -> str:
    rng = random.Random(seed)
    lines = []
    for _ in range(n):
        center = rng.choice(true_centers)
        lines.append(" ".join(f"{rng.gauss(c, 0.5):.4f}" for c in center))
    return "\n".join(lines) + "\n"


def next_centroids(output: dict, old: list[list[float]]) -> list[list[float]]:
    new = []
    for c in range(K):
        count = float(output.get(COUNT_BASE + c, 0.0))
        if count == 0:
            new.append(old[c])  # empty cluster keeps its centroid
            continue
        new.append([
            float(output.get(c * DIMS + d, 0.0)) / count for d in range(DIMS)
        ])
    return new


def main() -> None:
    rng = random.Random(1)
    true_centers = [[rng.uniform(-8, 8) for _ in range(DIMS)] for _ in range(K)]
    text = generate_points(800, true_centers)

    # Deliberately bad initial centroids.
    centroids = [[rng.uniform(-8, 8) for _ in range(DIMS)] for _ in range(K)]

    print(f"k-means: {K} clusters, {DIMS}-D, 800 points, GPU path")
    movements = []
    for round_no in range(1, 7):
        app = make_app(centroids)
        result = LocalJobRunner(app, use_gpu=True, num_reducers=4,
                                split_bytes=16 * 1024).run(text)
        updated = next_centroids(result.output, centroids)
        movement = sum(
            math.dist(a, b) for a, b in zip(centroids, updated)
        )
        movements.append(movement)
        gpu_ms = sum(r.seconds for r in result.gpu_task_results) * 1e3
        print(f"  round {round_no}: centroid movement {movement:8.4f}  "
              f"(simulated GPU map time {gpu_ms:.2f} ms)")
        centroids = updated
        if movement < 1e-3:
            break

    assert movements[-1] < movements[0], "k-means failed to converge"
    print("\nfinal centroids vs ground truth (matched greedily):")
    unmatched = list(true_centers)
    for cent in centroids:
        best = min(unmatched, key=lambda t: math.dist(cent, t))
        unmatched.remove(best)
        print(f"  found {['%.2f' % x for x in cent]}  "
              f"true {['%.2f' % x for x in best]}  "
              f"err {math.dist(cent, best):.3f}")


if __name__ == "__main__":
    main()
