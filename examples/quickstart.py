#!/usr/bin/env python3
"""Quickstart: from the paper's Listing 1 to a completed GPU map task.

Takes the wordcount map source (sequential C with one HeteroDoop
directive), translates it, shows the generated kernel, runs the full GPU
task pipeline on a small input split, and prints the Fig. 6-style
per-stage breakdown.

Run:  python examples/quickstart.py
"""

from repro.apps import get_app
from repro.compiler import translate
from repro.config import CLUSTER1
from repro.costmodel.io import IoModel
from repro.gpu.device import GpuDevice
from repro.minic import parse
from repro.runtime.gpu_task import GpuTaskRunner

# The paper's Listing 1: a sequential, CPU-only wordcount map with a
# single directive on the record loop. This exact text also runs
# unchanged on the CPU path — one source, two processors.
WORDCOUNT_MAP = r'''
int main()
{
    char word[30], *line;
    size_t nbytes = 10000;
    int read, linePtr, offset, one;
    line = (char*) malloc(nbytes*sizeof(char));
    #pragma mapreduce mapper key(word) value(one) keylength(30) kvpairs(20)
    while( (read = getline(&line, &nbytes, stdin)) != -1) {
        linePtr = 0;
        offset = 0;
        one = 1;
        while( (linePtr = getWord(line, offset, word, read, 30)) != -1) {
            printf("%s\t%d\n", word, one);
            offset += linePtr;
        }
    }
    free(line);
    return 0;
}
'''


def main() -> None:
    # 1. Source-to-source translation (paper §4).
    translation = translate(parse(WORDCOUNT_MAP))
    kernel = translation.map_kernel
    print("=== Generated GPU kernel (cf. paper Listing 3) ===")
    print(kernel.source_text)
    print()
    print("Variable classification (Algorithm 1):")
    for name, var in kernel.variables.items():
        print(f"  {name:10s} {str(var.ctype):10s} -> {var.klass.value}")
    print()
    print(translation.host_plan.describe())
    print()

    # 2. Run one GPU task end to end (paper Fig. 1 pipeline).
    app = get_app("WC")  # reuse the registered app's combiner
    runner = GpuTaskRunner(
        translation,
        app.translate_combine(),
        GpuDevice(CLUSTER1.gpu),
        IoModel.for_cluster(CLUSTER1),
        num_reducers=4,
    )
    split = app.generate(400, seed=1).encode()
    result = runner.run(split)

    print("=== GPU task result ===")
    print(f"records processed : {result.records}")
    print(f"map-emitted pairs : {result.emitted_pairs}")
    print(f"combined pairs    : {result.output_pairs}")
    print()
    print("Per-stage breakdown (Fig. 6 categories):")
    total = result.breakdown.total
    for stage, seconds in result.breakdown.as_dict().items():
        bar = "#" * int(50 * seconds / total)
        print(f"  {stage:13s} {seconds * 1e3:8.3f} ms  {bar}")
    print(f"  {'TOTAL':13s} {total * 1e3:8.3f} ms (simulated)")

    top = sorted(result.partition_output[0], key=lambda kv: -kv[1])[:5]
    print("\nTop pairs of partition 0:", top)


if __name__ == "__main__":
    main()
