#!/usr/bin/env python3
"""Wordcount end to end, three ways:

1. the CPU-only Hadoop path (Streaming filters, the paper's baseline),
2. the heterogeneous path (translated kernels on the simulated K40),
3. a 48-node cluster simulation at Table 2 scale comparing CPU-only,
   GPU-first, and tail scheduling.

The functional outputs of (1) and (2) are verified identical — the
combiner's §4.2 relaxation disappears after the reduce phase.

Run:  python examples/wordcount_cluster.py
"""

from repro.apps import get_app
from repro.config import CLUSTER1
from repro.experiments.calibrate import single_task_times
from repro.hadoop import ClusterSimulator, JobConf
from repro.hadoop.local import LocalJobRunner
from repro.scheduling import CpuOnlyPolicy, GpuFirstPolicy, TailPolicy


def main() -> None:
    app = get_app("WC")
    text = app.generate(1200, seed=7)

    # --- functional runs ---------------------------------------------------
    print("Running the job on the CPU path (Hadoop Streaming)...")
    cpu = LocalJobRunner(app, use_gpu=False, split_bytes=16 * 1024).run(text)
    print(f"  {cpu.map_tasks} map tasks, {len(cpu.output)} distinct words")

    print("Running the job on the GPU path (translated kernels)...")
    gpu = LocalJobRunner(app, use_gpu=True, split_bytes=16 * 1024).run(text)
    print(f"  {gpu.map_tasks} map tasks, {len(gpu.output)} distinct words")

    assert cpu.output == gpu.output, "CPU and GPU paths must agree!"
    print("  outputs identical (one source, two processors) ✓")

    sample = sorted(gpu.output.items(), key=lambda kv: -kv[1])[:8]
    print("  most frequent words:", sample)

    # --- cluster-scale simulation ------------------------------------------
    print("\nSimulating WC at Table 2 scale on Cluster1 "
          "(48 nodes x 20 cores + 1 K40)...")
    times = single_task_times(app, CLUSTER1)
    cpu_s, gpu_s = times.scaled(60.0)
    figures = app.figures_for("Cluster1")
    job = JobConf(
        name="wordcount",
        num_map_tasks=figures.map_tasks,
        num_reduce_tasks=figures.reduce_tasks,
        cluster=CLUSTER1,
        cpu_task_seconds=cpu_s,
        gpu_task_seconds=gpu_s,
    )
    base = ClusterSimulator(job, CpuOnlyPolicy()).run()
    gf = ClusterSimulator(job, GpuFirstPolicy()).run()
    tail = ClusterSimulator(job, TailPolicy()).run()
    print(f"  single-task GPU speedup  : {times.gpu_speedup:.1f}x")
    print(f"  CPU-only Hadoop          : {base.job_seconds:7.1f} s")
    print(f"  HeteroDoop (GPU-first)   : {gf.job_seconds:7.1f} s "
          f"({base.job_seconds / gf.job_seconds:.2f}x)")
    print(f"  HeteroDoop (tail sched)  : {tail.job_seconds:7.1f} s "
          f"({base.job_seconds / tail.job_seconds:.2f}x)")
    print(f"  GPU task share           : {gf.gpu_tasks}/"
          f"{gf.gpu_tasks + gf.cpu_tasks}")


if __name__ == "__main__":
    main()
